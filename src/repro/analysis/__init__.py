"""Static contract analysis: the engine's guarantees at lint time.

The runtime engine enforces stage ``reads``/``writes`` contracts via
:class:`~repro.core.stage.ContractViolation` -- but only once a run is
already in flight, and with one documented escape hatch (in-place
mutation of a read value).  This package shifts those guarantees left:
an AST-based analyzer proves contract conformance of any module that
constructs a :class:`~repro.core.pipeline.DecisionPipeline` *before*
anything executes, and layers pipeline-level dataflow checks and
repo-local lint rules on top.

Use the CLI::

    python -m repro.lint src examples
    python -m repro.lint src --format=json
    python -m repro.lint --list-rules

or the library API::

    from repro.analysis import analyze_file, analyze_paths
    findings, n_files = analyze_paths(["src", "examples"])
    errors = [f for f in findings if f.is_error]

The rule set is a pluggable registry -- see
:func:`~repro.analysis.findings.register_rule` and the catalogue in
``docs/STATIC_ANALYSIS.md``.
"""

from .analyzer import (
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .concurrency import (
    ClassInfo,
    MethodInfo,
    extract_classes,
)
from .extract import (
    FunctionEffects,
    ModuleInfo,
    PipelineDecl,
    StageDecl,
    extract_module,
    function_effects,
)
from .findings import (
    ERROR,
    Finding,
    Rule,
    WARNING,
    all_rules,
    get_rule,
    register_rule,
)

__all__ = [
    "ERROR",
    "ClassInfo",
    "Finding",
    "FunctionEffects",
    "MethodInfo",
    "ModuleInfo",
    "PipelineDecl",
    "Rule",
    "StageDecl",
    "WARNING",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "extract_classes",
    "extract_module",
    "function_effects",
    "get_rule",
    "iter_python_files",
    "register_rule",
]
