"""Analyzer orchestration: files -> ModuleInfo -> findings.

Runs every registered rule (see :mod:`repro.analysis.rules`) over one
or more source files, entirely statically: nothing in the analyzed
modules is imported or executed.
"""

from __future__ import annotations

import re
from pathlib import Path

from . import rules as _rules  # noqa: F401  (registers the rule set)
from .concurrency import extract_classes
from .extract import extract_module
from .findings import Finding, get_rule, registry_items

__all__ = [
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]


# Ruff-compatible suppression comments: ``# noqa`` silences the whole
# line, ``# noqa: RC001,RC004`` or ``# noqa: RC001 RC004`` a code list
# (comma- and/or whitespace-separated).  A code is letters then digits,
# so a trailing justification (``# noqa: RC034 -- process-local``)
# never parses as extra codes.
_NOQA = re.compile(r"#\s*noqa(?:\s*:\s*(?P<codes>[A-Z]+[0-9]+"
                   r"(?:[\s,]+[A-Z]+[0-9]+)*))?",
                   re.IGNORECASE)


def _suppressed(finding, source_lines):
    """Whether the finding's source line carries a matching noqa."""
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _NOQA.search(source_lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare ``# noqa`` silences everything
    listed = {code.upper() for code in re.split(r"[\s,]+", codes)
              if code}
    return finding.code in listed


def _selected(code, select, ignore):
    """Ruff-style prefix filtering: RC00 selects RC001..RC009."""
    if select and not any(code.startswith(prefix) for prefix in select):
        return False
    return not (ignore and any(code.startswith(prefix)
                               for prefix in ignore))


def analyze_source(source, path="<string>", *, select=None,
                   ignore=None):
    """All findings for one piece of source text, sorted by position."""
    try:
        module = extract_module(path, source)
    except SyntaxError as exc:
        rule = get_rule("RC000")
        return [Finding(path=str(path), line=exc.lineno or 1,
                        col=exc.offset or 1, code=rule.code,
                        severity=rule.severity,
                        message=f"syntax error: {exc.msg}")]
    findings = []
    for rule, check in registry_items():
        if not _selected(rule.code, select, ignore):
            continue
        if rule.scope == "module":
            findings.extend(check(module))
        elif rule.scope == "class":
            for cls in extract_classes(module):
                findings.extend(check(cls, module))
        elif rule.scope == "pipeline":
            for pipeline in module.pipelines:
                findings.extend(check(pipeline, module))
        else:  # stage
            for pipeline in module.pipelines:
                for stage in pipeline.stages:
                    findings.extend(check(stage, pipeline, module))
    source_lines = source.splitlines()
    return sorted(f for f in findings
                  if not _suppressed(f, source_lines))


def analyze_file(path, *, select=None, ignore=None):
    """All findings for one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return analyze_source(text, path=str(path), select=select,
                          ignore=ignore)


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def analyze_paths(paths, *, select=None, ignore=None):
    """Findings for every ``*.py`` under the given paths.

    Returns ``(findings, n_files)``.
    """
    findings = []
    files = iter_python_files(paths)
    for path in files:
        findings.extend(analyze_file(path, select=select,
                                     ignore=ignore))
    return sorted(findings), len(files)
