"""Labeled time-series classification workloads.

Synthetic stand-in for the UCR-style archives used by the
classification line of the paper (LightTS [47]): each class is a
distinct waveform family, so the problem is learnable yet non-trivial
(classes overlap under noise, warping and phase shifts).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng

__all__ = ["waveform_classification_dataset"]

#: The available waveform families, in label order.
WAVEFORMS = ("sine", "square", "sawtooth", "chirp", "double_sine")


def _waveform(kind, t, rng, phase_jitter=1.0):
    phase = rng.uniform(0, 2 * np.pi) * phase_jitter
    frequency = rng.uniform(0.8, 1.2)
    angle = 2 * np.pi * frequency * t + phase
    if kind == "sine":
        return np.sin(angle)
    if kind == "square":
        return np.sign(np.sin(angle))
    if kind == "sawtooth":
        return 2 * ((frequency * t + phase / (2 * np.pi)) % 1.0) - 1.0
    if kind == "chirp":
        return np.sin(angle * (1.0 + t))
    if kind == "double_sine":
        return 0.6 * np.sin(angle) + 0.4 * np.sin(3 * angle)
    raise ValueError(f"unknown waveform kind {kind!r}")


def waveform_classification_dataset(n_per_class=30, length=128,
                                    n_classes=4, *, noise_scale=0.25,
                                    warp=0.1, phase_jitter=1.0, rng=None):
    """Generate a labeled waveform dataset.

    Parameters
    ----------
    n_per_class:
        Examples per class.
    length:
        Timesteps per example.
    n_classes:
        How many of the five waveform families to use (2-5).
    noise_scale:
        Additive Gaussian noise level.
    warp:
        Random time-warp strength in fractions of the length (what makes
        DTW outperform Euclidean matching).
    phase_jitter:
        Scale of the random phase offset in [0, 1]; 1 gives fully random
        phase (hard for phase-bound encoders), small values give nearly
        aligned examples (the representation-learning experiments use a
        mild setting).

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``X`` of shape ``(n_classes * n_per_class, length)`` and integer
        labels ``y``.
    """
    check_positive(n_per_class, "n_per_class")
    check_positive(length, "length")
    if not 2 <= n_classes <= len(WAVEFORMS):
        raise ValueError(
            f"n_classes must be in [2, {len(WAVEFORMS)}], got {n_classes}"
        )
    rng = ensure_rng(rng)
    t = np.linspace(0.0, 1.0, int(length))

    examples = []
    labels = []
    for label, kind in enumerate(WAVEFORMS[:n_classes]):
        for _ in range(int(n_per_class)):
            if warp > 0:
                # Smooth monotone time warp.
                knots = np.sort(rng.uniform(0, 1, 4))
                warp_curve = np.interp(t, np.linspace(0, 1, 6),
                                       np.concatenate([[0.0], knots, [1.0]]))
                warped = (1 - warp) * t + warp * warp_curve
            else:
                warped = t
            wave = _waveform(kind, warped, rng, phase_jitter)
            wave = wave + rng.normal(0.0, noise_scale, size=len(t))
            examples.append(wave)
            labels.append(label)
    X = np.asarray(examples)
    y = np.asarray(labels)
    order = rng.permutation(len(y))
    return X[order], y[order]
