"""Anomaly injection for detection experiments.

The robust-anomaly-detection line of the paper ([34, 35, 41, 42])
evaluates detectors on series with labelled outliers and — crucially —
on *contaminated training data*.  This module injects the three
classical anomaly shapes with ground-truth labels:

* **point** anomalies: isolated spikes,
* **contextual** anomalies: values that are normal globally but wrong
  for their position in the seasonal cycle,
* **collective** anomalies: contiguous windows replaced by an abnormal
  regime (flatline or level shift).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_fraction, ensure_rng
from ..datatypes import TimeSeries

__all__ = ["inject_anomalies", "seasonal_series"]


def seasonal_series(n_steps=2000, *, period=96, amplitude=2.0,
                    noise_scale=0.3, n_channels=1, rng=None):
    """A clean seasonal baseline series for detection experiments."""
    if n_steps < period:
        raise ValueError("n_steps must cover at least one period")
    rng = ensure_rng(rng)
    t = np.arange(n_steps)
    columns = []
    for channel in range(n_channels):
        phase = 2 * np.pi * channel / max(n_channels, 1)
        wave = amplitude * np.sin(2 * np.pi * t / period + phase)
        wave = wave + 0.4 * amplitude * np.sin(4 * np.pi * t / period + phase)
        columns.append(wave + rng.normal(0.0, noise_scale, size=n_steps))
    values = np.column_stack(columns)
    return TimeSeries(values, name="seasonal")


def inject_anomalies(
    series,
    contamination=0.05,
    *,
    kinds=("point", "contextual", "collective"),
    magnitude=4.0,
    collective_length=12,
    period=96,
    rng=None,
):
    """Inject labelled anomalies into a :class:`TimeSeries`.

    Parameters
    ----------
    series:
        The clean input series (all channels are corrupted together at a
        given timestamp).
    contamination:
        Fraction of timestamps to corrupt.
    kinds:
        Which anomaly shapes to draw from (uniformly).
    magnitude:
        Spike size in units of the per-channel standard deviation.
    collective_length:
        Length of collective-anomaly windows.
    period:
        Seasonal period used to construct contextual anomalies (the value
        is borrowed from half a period away).

    Returns
    -------
    (TimeSeries, numpy.ndarray)
        The corrupted series and a boolean label array of shape
        ``(len(series),)`` marking anomalous timestamps.
    """
    contamination = check_fraction(contamination, "contamination",
                                   inclusive_high=False)
    if not kinds:
        raise ValueError("kinds must not be empty")
    unknown = set(kinds) - {"point", "contextual", "collective"}
    if unknown:
        raise ValueError(f"unknown anomaly kinds: {sorted(unknown)}")
    rng = ensure_rng(rng)

    values = series.values
    n_steps, n_channels = values.shape
    labels = np.zeros(n_steps, dtype=bool)
    scale = np.nanstd(values, axis=0)
    scale[scale == 0] = 1.0

    target = int(round(contamination * n_steps))
    guard = 0
    while labels.sum() < target and guard < 50 * n_steps:
        guard += 1
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind == "point":
            index = int(rng.integers(0, n_steps))
            if labels[index]:
                continue
            sign = rng.choice([-1.0, 1.0])
            values[index] += sign * magnitude * scale
            labels[index] = True
        elif kind == "contextual":
            index = int(rng.integers(0, n_steps))
            source = (index + period // 2) % n_steps
            if labels[index]:
                continue
            values[index] = values[source]
            labels[index] = True
        else:  # collective
            start = int(rng.integers(0, max(1, n_steps - collective_length)))
            stop = min(start + collective_length, n_steps)
            if labels[start:stop].any():
                continue
            mode = rng.choice(["flat", "shift"])
            if mode == "flat":
                # Stuck-at fault: the sensor freezes at an arbitrary
                # level within its historical range (freezing at the
                # locally-correct level would be unobservable).
                low = np.nanmin(values, axis=0)
                high = np.nanmax(values, axis=0)
                values[start:stop] = low + rng.random(n_channels) * (
                    high - low)
            else:
                values[start:stop] += magnitude * 0.75 * scale
            labels[start:stop] = True

    corrupted = series.with_values(values)
    return corrupted, labels
