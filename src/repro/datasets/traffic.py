"""Synthetic traffic workloads.

The paper's systems are evaluated on real road-sensor deployments and
GPS fleets.  This module replaces those proprietary traces with seeded
generators that preserve the statistical structure the algorithms
exploit:

* **diurnal + weekly periodicity** (morning/evening rush hours, lighter
  weekends),
* **spatial correlation** between nearby sensors (propagated through the
  sensor graph),
* **stochastic congestion events** that depress speeds over contiguous
  time windows and neighbouring sensors,
* **correlated edge travel times**: a per-trip latent congestion factor
  shared by edges along a route, which is exactly the correlation the
  path-centric uncertainty paradigm [4] captures and the edge-centric
  paradigm [15] ignores.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_positive, ensure_rng
from ..datatypes import CorrelatedTimeSeries, RoadNetwork

__all__ = [
    "diurnal_profile",
    "traffic_speed_dataset",
    "TrafficSimulator",
]

#: Minutes in a day, used by all profile helpers.
_DAY_MINUTES = 24 * 60


def diurnal_profile(minute_of_day, *, rush_depth=0.45):
    """Relative traffic-speed factor in ``(0, 1]`` for a minute of day.

    Two Gaussian rush-hour dips (8:00 and 17:30) on a free-flow baseline.
    Vectorized over ``minute_of_day``.
    """
    minutes = np.asarray(minute_of_day, dtype=float) % _DAY_MINUTES
    morning = np.exp(-0.5 * ((minutes - 8 * 60) / 75.0) ** 2)
    evening = np.exp(-0.5 * ((minutes - 17.5 * 60) / 90.0) ** 2)
    return 1.0 - rush_depth * np.maximum(morning, evening)


def traffic_speed_dataset(
    n_sensors=25,
    n_days=7,
    interval_minutes=15,
    *,
    free_flow_speed=60.0,
    noise_scale=2.0,
    n_events=None,
    rng=None,
):
    """Generate a correlated traffic-speed dataset.

    Sensors live on a ring-of-neighbourhoods graph: each sensor is
    connected to its two ring neighbours plus one long-range link, a
    cheap stand-in for a road-sensor deployment.  Speeds follow the
    diurnal/weekly profile, are spatially smoothed over the graph, and
    are hit by random congestion events.

    Returns
    -------
    CorrelatedTimeSeries
        Shape ``(n_days * 24 * 60 / interval_minutes, n_sensors)``.
    """
    if n_sensors < 3:
        raise ValueError("need at least 3 sensors")
    check_positive(n_days, "n_days")
    check_positive(interval_minutes, "interval_minutes")
    rng = ensure_rng(rng)

    steps_per_day = _DAY_MINUTES // int(interval_minutes)
    n_steps = int(n_days * steps_per_day)
    minutes = (np.arange(n_steps) * interval_minutes) % _DAY_MINUTES
    day_index = (np.arange(n_steps) * interval_minutes) // _DAY_MINUTES
    weekend = (day_index % 7) >= 5

    # Sensor graph: ring + sparse long-range links.
    adjacency = np.zeros((n_sensors, n_sensors))
    for i in range(n_sensors):
        j = (i + 1) % n_sensors
        adjacency[i, j] = adjacency[j, i] = 1.0
    n_links = max(1, n_sensors // 5)
    for _ in range(n_links):
        i, j = rng.choice(n_sensors, size=2, replace=False)
        adjacency[i, j] = adjacency[j, i] = 0.5

    profile = diurnal_profile(minutes)
    profile = np.where(weekend, 1.0 - 0.4 * (1.0 - profile), profile)

    # Per-sensor base speeds and idiosyncratic noise smoothed over graph.
    base = free_flow_speed * rng.uniform(0.85, 1.15, size=n_sensors)
    noise = rng.normal(0.0, noise_scale, size=(n_steps, n_sensors))
    degree = adjacency.sum(axis=1, keepdims=True)
    smoothing = adjacency / np.maximum(degree, 1.0)
    for _ in range(2):  # two rounds of neighbour averaging -> spatial corr.
        noise = 0.5 * noise + 0.5 * noise @ smoothing.T

    speeds = profile[:, None] * base[None, :] + noise

    # Congestion events: localized multiplicative slowdowns.
    if n_events is None:
        n_events = max(1, int(n_days * 2))
    for _ in range(int(n_events)):
        center = int(rng.integers(0, n_sensors))
        start = int(rng.integers(0, max(1, n_steps - steps_per_day // 4)))
        duration = int(rng.integers(steps_per_day // 12, steps_per_day // 4))
        severity = rng.uniform(0.3, 0.6)
        affected = {center}
        affected.update(np.flatnonzero(adjacency[center] > 0).tolist())
        for sensor in affected:
            weight = 1.0 if sensor == center else 0.5
            stop = min(start + duration, n_steps)
            speeds[start:stop, sensor] *= 1.0 - weight * severity

    speeds = np.clip(speeds, 3.0, None)
    timestamps = np.arange(n_steps, dtype=float) * interval_minutes
    return CorrelatedTimeSeries(speeds, adjacency=adjacency,
                                timestamps=timestamps)


class TrafficSimulator:
    """Stochastic, time-varying travel times on a :class:`RoadNetwork`.

    Ground-truth generative model (per trip departing at time ``t``):

    .. math::

        \\tau_{e} = \\frac{\\ell_e}{v_e \\cdot f(t)}
                    \\cdot \\exp(\\sigma_c z + \\sigma_i \\epsilon_e)

    where ``f(t)`` is the diurnal profile, ``z ~ N(0,1)`` is a *trip-level*
    congestion factor shared by every edge on the route, and
    ``eps_e ~ N(0,1)`` is per-edge noise.  The shared ``z`` makes edge
    travel times positively correlated along a path — the phenomenon that
    separates the edge-centric and path-centric uncertainty paradigms
    (experiments E5 and E19).

    Parameters
    ----------
    network:
        The road network to simulate on.
    sigma_correlated / sigma_independent:
        Log-scale standard deviations of the shared and per-edge factors.
    speed_range:
        Free-flow speed (distance units per time unit) is drawn uniformly
        per edge from this range.
    """

    def __init__(self, network, *, sigma_correlated=0.25,
                 sigma_independent=0.15, speed_range=(0.8, 1.2), rng=None):
        if not isinstance(network, RoadNetwork):
            raise TypeError("network must be a RoadNetwork")
        self.network = network
        self.sigma_correlated = float(sigma_correlated)
        self.sigma_independent = float(sigma_independent)
        self._rng = ensure_rng(rng)
        low, high = speed_range
        if not 0 < low <= high:
            raise ValueError(f"invalid speed_range {speed_range!r}")
        self._speeds = {}
        self._volatility = {}
        for u, v in network.edges():
            self._speeds[(u, v)] = float(self._rng.uniform(low, high))
            self._volatility[(u, v)] = 1.0

    def set_edge_profile(self, u, v, *, speed=None, volatility=None):
        """Override an edge's free-flow speed and/or noise multiplier.

        A ``volatility`` above 1 makes the edge's travel time more
        dispersed (an accident-prone arterial: fast on average, risky);
        below 1 makes it more reliable.  Used to build heterogeneous
        networks for the routing experiments.
        """
        if (u, v) not in self._speeds:
            raise KeyError(f"no edge ({u!r}, {v!r})")
        if speed is not None:
            if speed <= 0:
                raise ValueError("speed must be positive")
            self._speeds[(u, v)] = float(speed)
        if volatility is not None:
            if volatility <= 0:
                raise ValueError("volatility must be positive")
            self._volatility[(u, v)] = float(volatility)

    def free_flow_speed(self, u, v):
        """The edge's base speed before congestion effects."""
        return self._speeds[(u, v)]

    def mean_travel_time(self, u, v, departure_minute=12 * 60):
        """Expected travel time of an edge at a given departure time."""
        factor = float(diurnal_profile(departure_minute))
        length = self.network.edge_length(u, v)
        base = length / (self._speeds[(u, v)] * factor)
        # E[lognormal] correction so the mean matches sampled times.
        scale = self._volatility[(u, v)]
        total_var = scale ** 2 * (self.sigma_correlated ** 2
                                  + self.sigma_independent ** 2)
        return base * math.exp(0.5 * total_var)

    def sample_edge_times(self, edges, departure_minute=12 * 60, rng=None):
        """Sample correlated travel times for a sequence of edges.

        Returns an array of per-edge times drawn with one shared trip
        factor, i.e. one realization of a trip along ``edges``.
        """
        rng = self._rng if rng is None else ensure_rng(rng)
        z = rng.normal()
        times = np.empty(len(edges))
        minute = float(departure_minute)
        for index, (u, v) in enumerate(edges):
            factor = float(diurnal_profile(minute))
            length = self.network.edge_length(u, v)
            base = length / (self._speeds[(u, v)] * factor)
            eps = rng.normal()
            scale = self._volatility[(u, v)]
            times[index] = base * math.exp(
                scale * (self.sigma_correlated * z
                         + self.sigma_independent * eps)
            )
            minute += times[index]
        return times

    def sample_path_time(self, path, departure_minute=12 * 60, rng=None):
        """Total travel time of one simulated trip along a node path."""
        edges = self.network.path_edges(path)
        return float(self.sample_edge_times(edges, departure_minute, rng).sum())

    def sample_path_times(self, path, n_samples, departure_minute=12 * 60,
                          rng=None):
        """Repeated independent trips along the same path."""
        rng = self._rng if rng is None else ensure_rng(rng)
        return np.array([
            self.sample_path_time(path, departure_minute, rng)
            for _ in range(int(n_samples))
        ])
