"""Synthetic workload generators.

Every generator is seeded and replaces a proprietary or hardware-bound
data source used by the paper's referenced systems (see DESIGN.md,
"Substitutions").
"""

from .anomalies import inject_anomalies, seasonal_series
from .cloud import cloud_demand_dataset
from .traffic import TrafficSimulator, diurnal_profile, traffic_speed_dataset
from .trajectories import TrajectoryGenerator, simulate_trip
from .waves import sparse_buoy_observations, wave_field_dataset

__all__ = [
    "TrafficSimulator",
    "TrajectoryGenerator",
    "cloud_demand_dataset",
    "diurnal_profile",
    "inject_anomalies",
    "seasonal_series",
    "simulate_trip",
    "sparse_buoy_observations",
    "traffic_speed_dataset",
    "wave_field_dataset",
]
