"""Cloud resource-demand workloads (the MagicScaler [6] scenario).

Generates request-rate series with the features the paper's autoscaling
example depends on: diurnal/weekly seasonality, slowly drifting load
levels, heavy-tailed noise, and *unexpected surges* — short bursts whose
onset is unpredictable but whose decay is smooth, which is what makes
uncertainty-aware forecasting valuable for scaling decisions (E23).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, ensure_rng
from ..datatypes import TimeSeries

__all__ = ["cloud_demand_dataset"]


def cloud_demand_dataset(
    n_days=14,
    interval_minutes=10,
    *,
    base_level=100.0,
    daily_amplitude=40.0,
    burst_rate_per_day=1.5,
    burst_scale=120.0,
    noise_scale=6.0,
    drift_per_day=0.0,
    daily_spike_height=0.0,
    daily_spike_hour=18.0,
    rng=None,
):
    """Generate a univariate demand series.

    Parameters
    ----------
    n_days / interval_minutes:
        Length and resolution of the series.
    base_level / daily_amplitude:
        Mean demand and the size of the diurnal swing.
    burst_rate_per_day:
        Expected number of surge events per day (Poisson).
    burst_scale:
        Mean peak height of a surge (exponential).
    noise_scale:
        Scale of the multiplicative-ish Gaussian noise floor.
    drift_per_day:
        Linear growth of the base level, for distribution-shift
        experiments (E13, E16).
    daily_spike_height / daily_spike_hour:
        Optional sharp *recurring* load spike (scheduled batch jobs,
        shop-opening rushes): tall, narrow, and at the same time every
        day — predictable for a model that learns the calendar,
        punishing for a purely reactive scaler.

    Returns
    -------
    (TimeSeries, numpy.ndarray)
        The demand series and a boolean array flagging burst timesteps
        (ground truth for evaluating surge handling).
    """
    check_positive(n_days, "n_days")
    check_positive(interval_minutes, "interval_minutes")
    rng = ensure_rng(rng)

    steps_per_day = (24 * 60) // int(interval_minutes)
    n_steps = int(n_days * steps_per_day)
    step_minutes = np.arange(n_steps) * interval_minutes
    minute_of_day = step_minutes % (24 * 60)
    day_index = step_minutes // (24 * 60)

    # Office-hours hump plus an evening shoulder.
    hour = minute_of_day / 60.0
    diurnal = (
        np.exp(-0.5 * ((hour - 14.0) / 3.5) ** 2)
        + 0.45 * np.exp(-0.5 * ((hour - 20.5) / 1.8) ** 2)
    )
    weekend = (day_index % 7) >= 5
    seasonal = daily_amplitude * diurnal * np.where(weekend, 0.55, 1.0)

    demand = base_level + seasonal + drift_per_day * (step_minutes / (24 * 60))
    if daily_spike_height > 0:
        spike = np.exp(-0.5 * ((hour - daily_spike_hour) / 0.35) ** 2)
        demand = demand + daily_spike_height * spike
    demand = demand + rng.normal(0.0, noise_scale, size=n_steps)

    # Poisson surge arrivals with fast rise / exponential decay.
    burst_mask = np.zeros(n_steps, dtype=bool)
    n_bursts = rng.poisson(burst_rate_per_day * n_days)
    for _ in range(int(n_bursts)):
        start = int(rng.integers(0, n_steps))
        height = rng.exponential(burst_scale)
        decay_steps = int(rng.integers(steps_per_day // 24,
                                       steps_per_day // 4) + 1)
        stop = min(start + decay_steps, n_steps)
        span = np.arange(stop - start)
        demand[start:stop] += height * np.exp(-3.0 * span / max(len(span), 1))
        burst_mask[start:stop] = True

    demand = np.clip(demand, 0.0, None)
    series = TimeSeries(demand, timestamps=step_minutes.astype(float),
                        name="cloud_demand")
    return series, burst_mask
