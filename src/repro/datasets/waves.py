"""Spatio-temporal wave-height fields with sparse buoy sampling.

Stands in for the ocean significant-wave-height scenario of [2]: a
smooth global field is observed only at a handful of buoy locations, and
the governance layer must complete the rest.  The generative field is a
sum of travelling swells plus a slowly moving storm system, so it has
exactly the locality and temporal coherence the completion methods
exploit.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_fraction, ensure_rng
from ..datatypes import ImageSequence

__all__ = ["wave_field_dataset", "sparse_buoy_observations"]


def wave_field_dataset(n_frames=48, grid=(16, 16), *, n_swells=3,
                       storm=True, rng=None):
    """Generate a smooth spatio-temporal field as an :class:`ImageSequence`.

    Parameters
    ----------
    n_frames:
        Number of time steps.
    grid:
        Spatial extent ``(N, M)``.
    n_swells:
        Number of superimposed travelling sinusoidal swells.
    storm:
        Whether to add a moving Gaussian storm bump.
    """
    if n_frames < 2:
        raise ValueError("need at least two frames")
    rows, cols = grid
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    rng = ensure_rng(rng)

    y, x = np.mgrid[0:rows, 0:cols]
    field = np.zeros((n_frames, rows, cols))
    for _ in range(int(n_swells)):
        kx = rng.uniform(0.2, 0.8)
        ky = rng.uniform(0.2, 0.8)
        omega = rng.uniform(0.1, 0.5)
        amplitude = rng.uniform(0.4, 1.0)
        phase = rng.uniform(0, 2 * np.pi)
        for t in range(n_frames):
            field[t] += amplitude * np.sin(
                kx * x + ky * y - omega * t + phase
            )

    if storm:
        cx0, cy0 = rng.uniform(0, cols), rng.uniform(0, rows)
        vx, vy = rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3)
        height = rng.uniform(2.0, 3.5)
        width = rng.uniform(2.0, 4.0)
        for t in range(n_frames):
            cx, cy = cx0 + vx * t, cy0 + vy * t
            field[t] += height * np.exp(
                -((x - cx) ** 2 + (y - cy) ** 2) / (2 * width ** 2)
            )

    field += 2.5  # mean significant wave height offset
    return ImageSequence(field)


def sparse_buoy_observations(sequence, observed_fraction=0.1, rng=None):
    """Keep only a random subset of grid cells (the "buoys").

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``observed`` of shape ``(T, N, M)`` with nan at unobserved cells,
        and the boolean buoy mask of shape ``(N, M)`` (static: the same
        cells are instrumented in every frame, like real buoys).
    """
    observed_fraction = check_fraction(observed_fraction,
                                       "observed_fraction",
                                       inclusive_low=False)
    rng = ensure_rng(rng)
    frames = sequence.frames[..., 0]
    _, rows, cols = frames.shape
    n_cells = rows * cols
    n_buoys = max(1, int(round(observed_fraction * n_cells)))
    chosen = rng.choice(n_cells, size=n_buoys, replace=False)
    mask = np.zeros(n_cells, dtype=bool)
    mask[chosen] = True
    mask = mask.reshape(rows, cols)
    observed = frames.copy()
    observed[:, ~mask] = np.nan
    return observed, mask
