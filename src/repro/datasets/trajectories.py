"""Trajectory simulation: GPS fleets over a road network.

Replaces the paper's proprietary vehicle fleets.  Drivers pick routes by
minimizing a personal weighted combination of edge criteria (a
preference vector, as in the personalized-routing line of work
[54, 55]), drive them under the stochastic travel times of
:class:`~repro.datasets.traffic.TrafficSimulator`, and emit GPS samples
at a fixed rate with optional measurement noise — producing exactly the
noisy, sparse inputs that map matching [17] and learning-based routing
[56] consume.
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from .._validation import ensure_rng
from ..datatypes import GpsPoint, Trajectory
from .traffic import TrafficSimulator

__all__ = ["simulate_trip", "TrajectoryGenerator"]


def simulate_trip(network, path, edge_times, *, start_time=0.0,
                  sample_interval=1.0):
    """Drive a node ``path`` with the given per-edge times and emit GPS.

    Positions are interpolated along each edge at constant speed; one
    sample is emitted every ``sample_interval`` time units, plus the trip
    endpoints.

    Returns
    -------
    Trajectory
        Noise-free ground-truth trajectory.
    """
    edges = network.path_edges(path)
    if len(edge_times) != len(edges):
        raise ValueError(
            f"expected {len(edges)} edge times, got {len(edge_times)}"
        )
    points = [GpsPoint(*network.position(path[0]), start_time)]
    clock = float(start_time)
    next_sample = clock + sample_interval
    for (u, v), duration in zip(edges, edge_times):
        if duration <= 0:
            raise ValueError("edge times must be positive")
        edge_end = clock + duration
        while next_sample < edge_end:
            fraction = (next_sample - clock) / duration
            x, y = network.point_on_edge(u, v, fraction)
            points.append(GpsPoint(x, y, next_sample))
            next_sample += sample_interval
        clock = edge_end
    points.append(GpsPoint(*network.position(path[-1]), clock))
    return Trajectory(points)


class TrajectoryGenerator:
    """Simulate a fleet of drivers with personal routing preferences.

    Parameters
    ----------
    simulator:
        The stochastic travel-time model (owns the road network).
    preference_noise:
        Std-dev of the log-normal perturbation drivers apply to edge
        costs when planning, so different drivers (and repeated trips)
        explore different reasonable routes.
    """

    def __init__(self, simulator, *, preference_noise=0.15, rng=None):
        if not isinstance(simulator, TrafficSimulator):
            raise TypeError("simulator must be a TrafficSimulator")
        self.simulator = simulator
        self.network = simulator.network
        self.preference_noise = float(preference_noise)
        self._rng = ensure_rng(rng)

    def random_od_pair(self, *, min_hops=3, max_tries=200):
        """An origin-destination pair at least ``min_hops`` apart."""
        nodes = self.network.nodes()
        for _ in range(max_tries):
            origin, destination = self._rng.choice(len(nodes), size=2,
                                                   replace=False)
            origin, destination = nodes[int(origin)], nodes[int(destination)]
            try:
                path = self.network.shortest_path(origin, destination)
            except Exception:  # unreachable pair in a sparse network
                continue
            if len(path) - 1 >= min_hops:
                return origin, destination
        raise RuntimeError("could not find a sufficiently distant OD pair")

    def plan_route(self, origin, destination, *, perturb=True):
        """A driver's route choice: shortest path under perturbed costs."""
        graph = self.network.graph
        weights = {}
        for u, v in self.network.edges():
            cost = self.network.edge_length(u, v)
            if perturb and self.preference_noise > 0:
                cost *= float(np.exp(self._rng.normal(
                    0.0, self.preference_noise)))
            weights[(u, v)] = cost
        return nx.dijkstra_path(
            graph, origin, destination,
            weight=lambda u, v, data: weights[(u, v)],
        )

    def generate(self, n_trips, *, departure_minute=8 * 60,
                 sample_interval=0.5, noise_sigma=0.0, min_hops=3):
        """Simulate ``n_trips`` trips.

        Returns
        -------
        list of (path, Trajectory)
            The ground-truth node path and the (possibly noisy) GPS trace
            for each trip.
        """
        trips = []
        for _ in range(int(n_trips)):
            origin, destination = self.random_od_pair(min_hops=min_hops)
            path = self.plan_route(origin, destination)
            edges = self.network.path_edges(path)
            times = self.simulator.sample_edge_times(
                edges, departure_minute, rng=self._rng
            )
            trajectory = simulate_trip(
                self.network, path, times,
                start_time=float(departure_minute),
                sample_interval=sample_interval,
            )
            if noise_sigma > 0:
                trajectory = trajectory.with_noise(noise_sigma, self._rng)
            trips.append((path, trajectory))
        return trips

    def generate_on_paths(self, paths, *, departure_minute=8 * 60,
                          sample_interval=0.5, noise_sigma=0.0):
        """Simulate one trip per given node path (for path-centric stats)."""
        trips = []
        for path in paths:
            edges = self.network.path_edges(path)
            times = self.simulator.sample_edge_times(
                edges, departure_minute, rng=self._rng
            )
            trajectory = simulate_trip(
                self.network, path, times,
                start_time=float(departure_minute),
                sample_interval=sample_interval,
            )
            if noise_sigma > 0:
                trajectory = trajectory.with_noise(noise_sigma, self._rng)
            trips.append((path, trajectory))
        return trips
