"""Unified benchmarking harness (paper §II-C, "benchmarking").

"It is essential to be able to compare such approaches empirically in a
comprehensive and fair manner, thus calling for benchmarking" — the
FoundTS-style harness [6, 50]: a model zoo × dataset suite grid, every
cell evaluated with the *same* protocol (rolling-origin backtesting,
shared horizons, shared metrics), rendered as a leaderboard table.

Used directly by experiment E24 and by the README quickstart.
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import check_positive
from ..analytics.forecasting import rolling_origin_evaluation
from ..analytics.metrics import mae, rmse, smape

__all__ = ["ForecastingLeaderboard"]


class ForecastingLeaderboard:
    """Model-zoo x dataset-suite evaluation grid.

    Parameters
    ----------
    horizon / n_origins:
        The shared rolling-origin protocol.
    metrics:
        Mapping ``{name: metric(y_true, y_pred)}``; defaults to MAE,
        RMSE and sMAPE.
    """

    def __init__(self, *, horizon=24, n_origins=4, metrics=None):
        self.horizon = int(check_positive(horizon, "horizon"))
        self.n_origins = int(check_positive(n_origins, "n_origins"))
        self.metrics = dict(metrics or {
            "mae": mae, "rmse": rmse, "smape": smape,
        })
        self._models = {}
        self._datasets = {}
        self.results = []

    def add_model(self, name, factory):
        """Register a model as a zero-argument forecaster factory."""
        if not callable(factory):
            raise TypeError("factory must be callable")
        self._models[str(name)] = factory
        return self

    def add_dataset(self, name, series):
        """Register an evaluation series."""
        self._datasets[str(name)] = series
        return self

    def run(self):
        """Evaluate the full grid; returns the result-row list.

        Each row: ``{"model", "dataset", "seconds", <metric>...}``.
        Models that cannot fit a dataset get ``nan`` metrics (recorded,
        not skipped — a fair benchmark reports failures).
        """
        if not self._models or not self._datasets:
            raise RuntimeError("register at least one model and dataset")
        self.results = []
        for dataset_name, series in self._datasets.items():
            for model_name, factory in self._models.items():
                row = {"model": model_name, "dataset": dataset_name}
                started = time.perf_counter()
                try:
                    for metric_name, metric in self.metrics.items():
                        outcome = rolling_origin_evaluation(
                            factory, series, horizon=self.horizon,
                            n_origins=self.n_origins, metric=metric,
                        )
                        row[metric_name] = outcome["score"]
                except (ValueError, RuntimeError,
                        np.linalg.LinAlgError):
                    for metric_name in self.metrics:
                        row[metric_name] = float("nan")
                row["seconds"] = time.perf_counter() - started
                self.results.append(row)
        return self.results

    def table(self, metric="mae"):
        """Leaderboard matrix: one row per model, one column per
        dataset, plus mean rank (the FoundTS summary statistic)."""
        if not self.results:
            raise RuntimeError("run() first")
        if metric not in self.metrics:
            raise KeyError(f"unknown metric {metric!r}")
        datasets = sorted({row["dataset"] for row in self.results})
        models = sorted({row["model"] for row in self.results})
        values = {
            (row["model"], row["dataset"]): row[metric]
            for row in self.results
        }
        matrix = np.array([
            [values[(model, dataset)] for dataset in datasets]
            for model in models
        ])
        # Mean rank over datasets (nan ranks last).
        ranks = np.zeros_like(matrix)
        for column in range(matrix.shape[1]):
            scores = matrix[:, column]
            order = np.argsort(np.where(np.isnan(scores), np.inf,
                                        scores))
            for rank, model_index in enumerate(order):
                ranks[model_index, column] = rank + 1
        return {
            "models": models,
            "datasets": datasets,
            "scores": matrix,
            "mean_rank": ranks.mean(axis=1),
        }

    def render(self, metric="mae"):
        """The leaderboard as an aligned text table."""
        table = self.table(metric)
        width = max(len(m) for m in table["models"]) + 2
        header = "model".ljust(width) + "".join(
            d.rjust(14) for d in table["datasets"]) + "mean_rank".rjust(12)
        lines = [header, "-" * len(header)]
        order = np.argsort(table["mean_rank"])
        for index in order:
            row = table["models"][index].ljust(width)
            row += "".join(
                f"{value:14.4f}" for value in table["scores"][index])
            row += f"{table['mean_rank'][index]:12.2f}"
            lines.append(row)
        return "\n".join(lines)
