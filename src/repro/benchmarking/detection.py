"""Anomaly-detection benchmarking (the second half of §II-C's
benchmarking: "forecasting and anomaly detection tasks").

Same philosophy as the forecasting leaderboard: a detector zoo × a
dataset suite, every cell evaluated with one shared protocol —
train on the (possibly contaminated) archive, score the labeled live
stream, report point-adjusted best-F1 and ROC-AUC.
"""

from __future__ import annotations

import time

import numpy as np

from ..analytics.metrics import best_f1, point_adjusted_scores, roc_auc

__all__ = ["DetectionLeaderboard"]


class DetectionLeaderboard:
    """Detector-zoo x dataset-suite evaluation grid.

    Datasets are registered as ``(train_series, test_series, labels)``
    triples; detectors as zero-argument factories returning objects with
    ``fit(series)`` and ``score(series)``.
    """

    def __init__(self, *, point_adjust=True):
        self.point_adjust = bool(point_adjust)
        self._detectors = {}
        self._datasets = {}
        self.results = []

    def add_detector(self, name, factory):
        if not callable(factory):
            raise TypeError("factory must be callable")
        self._detectors[str(name)] = factory
        return self

    def add_dataset(self, name, train, test, labels):
        labels = np.asarray(labels, dtype=bool)
        if labels.shape != (len(test),):
            raise ValueError("labels must align with the test series")
        if not labels.any():
            raise ValueError("test data needs at least one anomaly")
        self._datasets[str(name)] = (train, test, labels)
        return self

    def run(self):
        """Evaluate the full grid; returns the result-row list."""
        if not self._detectors or not self._datasets:
            raise RuntimeError(
                "register at least one detector and dataset")
        self.results = []
        for dataset_name, (train, test, labels) in \
                self._datasets.items():
            for detector_name, factory in self._detectors.items():
                row = {"detector": detector_name,
                       "dataset": dataset_name}
                started = time.perf_counter()
                try:
                    detector = factory()
                    detector.fit(train)
                    scores = detector.score(test)
                    if self.point_adjust:
                        scores = point_adjusted_scores(labels, scores)
                    row["best_f1"] = best_f1(labels, scores)[0]
                    row["roc_auc"] = roc_auc(labels, scores)
                except (ValueError, RuntimeError):
                    row["best_f1"] = float("nan")
                    row["roc_auc"] = float("nan")
                row["seconds"] = time.perf_counter() - started
                self.results.append(row)
        return self.results

    def table(self, metric="roc_auc"):
        """Leaderboard matrix plus mean rank (higher metric = better)."""
        if not self.results:
            raise RuntimeError("run() first")
        if metric not in ("best_f1", "roc_auc"):
            raise KeyError(f"unknown metric {metric!r}")
        datasets = sorted({row["dataset"] for row in self.results})
        detectors = sorted({row["detector"] for row in self.results})
        values = {
            (row["detector"], row["dataset"]): row[metric]
            for row in self.results
        }
        matrix = np.array([
            [values[(detector, dataset)] for dataset in datasets]
            for detector in detectors
        ])
        ranks = np.zeros_like(matrix)
        for column in range(matrix.shape[1]):
            scores = matrix[:, column]
            order = np.argsort(np.where(np.isnan(scores), -np.inf,
                                        -scores))
            for rank, detector_index in enumerate(order):
                ranks[detector_index, column] = rank + 1
        return {
            "detectors": detectors,
            "datasets": datasets,
            "scores": matrix,
            "mean_rank": ranks.mean(axis=1),
        }

    def render(self, metric="roc_auc"):
        """The leaderboard as an aligned text table."""
        table = self.table(metric)
        width = max(len(d) for d in table["detectors"]) + 2
        header = "detector".ljust(width) + "".join(
            d.rjust(14) for d in table["datasets"]) \
            + "mean_rank".rjust(12)
        lines = [header, "-" * len(header)]
        order = np.argsort(table["mean_rank"])
        for index in order:
            row = table["detectors"][index].ljust(width)
            row += "".join(
                f"{value:14.4f}" for value in table["scores"][index])
            row += f"{table['mean_rank'][index]:12.2f}"
            lines.append(row)
        return "\n".join(lines)
