"""Client-side latency summarization shared by load generators and
benchmarks.

One canonical way to turn raw per-request latency samples into the
percentile summary every harness reports (the ROADMAP's shared
load-gen/latency-histogram harness): :class:`repro.serve.closed_loop`
folds its client samples through :func:`summarize_latencies`, and the
E28/E29 benchmarks reuse the same summary for their timed phases, so
"p99" always means the same estimator everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "summarize_latencies"]


@dataclass(frozen=True)
class LatencySummary:
    """Exact summary of raw latency samples (seconds)."""

    n_samples: int
    p50: float
    p90: float
    p99: float
    mean: float
    max: float

    def to_dict(self):
        """JSON-ready dict (what benchmark artifacts embed)."""
        return {
            "n_samples": self.n_samples,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "mean": self.mean,
            "max": self.max,
        }


def summarize_latencies(samples):
    """Exact percentiles/mean/max of raw latency samples.

    Client-side samples are summarized exactly (linear-interpolated
    percentiles over the raw values) — unlike the server's bucketed
    ``serve.latency_seconds`` histogram, whose
    :meth:`Histogram.quantile` estimates the benchmarks cross-check
    against this.  An empty sequence summarizes to all zeros, so
    callers need no special case for zero-traffic runs.
    """
    samples = np.asarray(list(samples), dtype=float)
    if len(samples) == 0:
        return LatencySummary(n_samples=0, p50=0.0, p90=0.0, p99=0.0,
                              mean=0.0, max=0.0)
    p50, p90, p99 = np.percentile(samples, [50, 90, 99])
    return LatencySummary(
        n_samples=int(len(samples)),
        p50=float(p50), p90=float(p90), p99=float(p99),
        mean=float(samples.mean()), max=float(samples.max()),
    )
