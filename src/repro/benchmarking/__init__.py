"""Unified, fair benchmarking of analytics methods (FoundTS-style)."""

from .detection import DetectionLeaderboard
from .harness import ForecastingLeaderboard

__all__ = ["DetectionLeaderboard", "ForecastingLeaderboard"]
