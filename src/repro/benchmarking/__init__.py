"""Unified, fair benchmarking of analytics methods (FoundTS-style)
plus the shared latency-summary harness used by serving benchmarks."""

from .detection import DetectionLeaderboard
from .harness import ForecastingLeaderboard
from .latency import LatencySummary, summarize_latencies

__all__ = [
    "DetectionLeaderboard",
    "ForecastingLeaderboard",
    "LatencySummary",
    "summarize_latencies",
]
