"""Quickstart: the Data-Governance-Analytics-Decision paradigm, end to end.

Builds the paper's Figure 1 as a runnable pipeline on a synthetic traffic
deployment:

* data        — correlated traffic-speed sensors with 25 % missing values,
* governance  — Kalman-smoother imputation,
* analytics   — spatio-temporal graph-filter forecasting,
* decision    — dispatch extra buses where predicted speeds collapse.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import DecisionPipeline
from repro.analytics.forecasting import GraphFilterForecaster
from repro.analytics.metrics import mae
from repro.datasets import traffic_speed_dataset
from repro.datatypes import CorrelatedTimeSeries, TimeSeries
from repro.governance.imputation import impute_seasonal


def load_data(state):
    rng = np.random.default_rng(7)
    full = traffic_speed_dataset(n_sensors=16, n_days=7, rng=rng)
    train, test = full.split(0.9)
    state["truth"] = train
    state["test"] = test
    state["observed"] = train.corrupt(0.25, rng, block_length=6)
    return ("collected 7 days from 16 sensors, "
            f"{state['observed'].missing_fraction():.0%} missing")


def impute(state):
    observed = state["observed"]
    completed = impute_seasonal(observed.as_timeseries(), period=96)
    state["clean"] = CorrelatedTimeSeries(
        completed.values, adjacency=observed.adjacency,
        timestamps=observed.timestamps, names=observed.names)
    holes = ~observed.mask
    error = np.abs(completed.values[holes]
                   - state["truth"].values[holes]).mean()
    crude = np.nanmean(observed.values)
    crude_error = np.abs(crude - state["truth"].values[holes]).mean()
    return (f"imputed missing speeds: MAE {error:.2f} km/h on the gaps "
            f"(naive mean-fill would be {crude_error:.2f} km/h)")


def forecast(state):
    model = GraphFilterForecaster(n_lags=6, n_hops=2)
    model.fit(state["clean"])
    horizon = len(state["test"])
    state["forecast"] = model.predict(horizon)
    error = mae(state["test"].values, state["forecast"])
    return f"forecast {horizon} steps ahead, MAE {error:.2f} km/h"


def decide(state):
    predicted = state["forecast"]
    # Dispatch to the three sensors with the lowest predicted speeds.
    slowest = np.argsort(predicted.min(axis=0))[:3]
    state["dispatch"] = slowest
    names = [state["clean"].names[i] for i in slowest]
    speeds = predicted.min(axis=0)[slowest]
    detail = ", ".join(f"{n} ({s:.0f} km/h)"
                       for n, s in zip(names, speeds))
    return f"dispatching extra buses to the 3 slowest sensors: {detail}"


def main():
    # Each stage declares its contract: the state keys it reads and
    # writes.  The engine resolves the contracts into a dependency
    # DAG, runs contract-independent stages concurrently, and can
    # replay unchanged stages from a StageCache across runs.
    pipeline = DecisionPipeline("traffic operations quickstart")
    pipeline.add_data("collect", load_data,
                      reads=(), writes=("truth", "test", "observed"))
    pipeline.add_governance("impute", impute,
                            reads=("observed", "truth"),
                            writes=("clean",))
    pipeline.add_analytics("forecast", forecast,
                           reads=("clean", "test"),
                           writes=("forecast",))
    pipeline.add_decision("dispatch", decide,
                          reads=("forecast", "clean"),
                          writes=("dispatch",))

    state, report = pipeline.run()
    print(report.render())
    print()
    print("resolved DAG:")
    for stage, deps in pipeline.resolved_dag().items():
        print(f"  {stage} <- {', '.join(deps) if deps else '(source)'}")
    print()
    print("Every stage is inspectable; drop one with "
          "pipeline.without_stage(name) to study its contribution "
          "(see benchmarks/bench_e01_pipeline.py).")


if __name__ == "__main__":
    main()
