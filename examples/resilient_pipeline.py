"""Resilient operation: transactional stages, timeouts and fault drills.

The paper's §II-C lists *robustness* among the desired
characteristics of an analytics stack.  This example runs the
Figure-1 traffic pipeline the way an operator would in production —
assuming components WILL fail — and shows what the engine guarantees
when they do:

* a flaky governance stage is retried with jittered exponential
  backoff, and every failed attempt rolls back: retries always start
  from clean pre-attempt state;
* a slow analytics stage is bounded by a per-stage ``timeout`` and
  degraded to a cheap fallback instead of hanging the run;
* the whole run carries a ``deadline``; when a drill exhausts it the
  engine cancels cooperatively and reports exactly which stages were
  cut off — with zero torn writes in the final state;
* all of it is driven by the :class:`FaultInjector`, the same
  scripted-failure harness the test suite uses, so the failure
  drills are deterministic.
"""

import numpy as np

from repro import (
    DecisionPipeline,
    FaultInjector,
    RunDeadlineExceeded,
    TimeSeries,
)
from repro.analytics.forecasting import ARForecaster
from repro.datasets import traffic_speed_dataset
from repro.governance.imputation import impute_seasonal


def load(s):
    rng = np.random.default_rng(11)
    full = traffic_speed_dataset(n_sensors=8, n_days=3, rng=rng)
    train, test = full.split(0.9)
    s["observed"] = train.corrupt(0.25, np.random.default_rng(12),
                                  block_length=6)
    s["test"] = test
    return f"{s['observed'].values.shape} observations"


def impute(s):
    completed = impute_seasonal(s["observed"].as_timeseries(), 96)
    s["clean"] = completed.values
    return "seasonal imputation"


def forecast(s):
    model = ARForecaster(n_lags=12, seasonal_period=96)
    model.fit(TimeSeries(s["clean"]))
    s["forecast"] = model.predict(len(s["test"]))
    return "AR forecast"


def forecast_fallback(s):
    # Persistence forecast: last observed row, repeated.
    s["forecast"] = np.tile(s["clean"][-1], (len(s["test"]), 1))
    return "persistence fallback"


def dispatch(s):
    worst = np.argsort(s["forecast"].mean(axis=0))[:2]
    s["dispatch"] = worst
    return f"crews to sensors {sorted(worst.tolist())}"


def build():
    pipeline = DecisionPipeline("resilient traffic ops")
    pipeline.add_data("load", load, reads=(),
                      writes=("observed", "test"))
    pipeline.add_governance("impute", impute,
                            reads=("observed",), writes=("clean",),
                            retries=3, backoff=0.01)
    pipeline.add_analytics("forecast", forecast,
                           reads=("clean", "test"),
                           writes=("forecast",),
                           timeout=30.0, on_error="fallback",
                           fallback=forecast_fallback)
    pipeline.add_decision("dispatch", dispatch,
                          reads=("forecast",), writes=("dispatch",))
    return pipeline


def main():
    print("=" * 64)
    print("Drill 1: flaky governance — two injected faults, retried")
    print("=" * 64)
    faults = FaultInjector().fail("impute", times=2)
    state, report = build().run(tracer=faults, deadline=120.0)
    print(report.render())
    record = report.record("impute")
    print(f"-> impute recovered after {record.retries} retries; "
          f"injected faults consumed: {faults.injected}")
    assert record.status == "ok" and record.retries == 2

    print()
    print("=" * 64)
    print("Drill 2: hung analytics — injected timeout, fallback engages")
    print("=" * 64)
    faults = FaultInjector().timeout("forecast")
    state, report = build().run(tracer=faults, deadline=120.0)
    print(report.render())
    record = report.record("forecast")
    print(f"-> forecast degraded to: {record.summary!r} "
          f"(status={record.status})")
    assert record.status == "fallback"
    assert state["dispatch"] is not None

    print()
    print("=" * 64)
    print("Drill 3: blown deadline — cooperative cancellation")
    print("=" * 64)
    faults = FaultInjector().delay("impute", 0.2)
    try:
        build().run(tracer=faults, deadline=0.05)
    except RunDeadlineExceeded as exc:
        print(exc.report.render())
        cancelled = [r.name for r in exc.report.records
                     if r.status == "cancelled"]
        torn = [k for k in ("clean", "forecast", "dispatch")
                if k in exc.state]
        print(f"-> cancelled stages: {cancelled}; "
              f"torn writes in final state: {torn or 'none'}")
        assert not torn, "transactional rollback must leave no writes"
    else:
        raise SystemExit("deadline drill unexpectedly completed")

    print()
    print("All drills behaved: retries roll back, timeouts degrade, "
          "deadlines cancel cleanly.")


if __name__ == "__main__":
    main()
