"""Ocean wave-height monitoring from sparse buoys.

Reproduces the spatio-temporal completion scenario of the paper's
governance section (ref. [2]: completing "global significant wave
heights using sparse buoy data"): a smooth spatio-temporal field is
observed only at a handful of instrumented grid cells, and governance
must reconstruct the rest before analytics (here: a storm-cell alert)
can run.

Run with::

    python examples/ocean_monitoring.py
"""

import numpy as np

from repro.datasets import sparse_buoy_observations, wave_field_dataset
from repro.governance.imputation import complete_field


def main():
    rng = np.random.default_rng(0)
    field = wave_field_dataset(n_frames=48, grid=(16, 16), rng=rng)
    truth = field.frames[..., 0]
    observed, buoys = sparse_buoy_observations(
        field, observed_fraction=0.12, rng=np.random.default_rng(1))
    print(f"field: {len(field)} frames of a "
          f"{field.grid_shape[0]}x{field.grid_shape[1]} ocean grid; "
          f"{int(buoys.sum())} buoys instrument "
          f"{buoys.mean():.0%} of cells")

    completed = complete_field(field, observed, bandwidth=1.8)
    hidden = np.isnan(observed)
    model_error = np.abs(completed[hidden] - truth[hidden]).mean()
    mean_error = np.abs(truth[~hidden].mean() - truth[hidden]).mean()
    print(f"\ncompletion MAE on uninstrumented cells: {model_error:.3f} m")
    print(f"(climatological-mean baseline:          {mean_error:.3f} m; "
          f"field std {truth.std():.3f} m)")

    # Analytics on the completed field: where is the storm?
    last = completed[-1]
    threshold = np.quantile(truth, 0.95)
    alert_cells = last > threshold
    true_cells = truth[-1] > threshold
    if alert_cells.any() or true_cells.any():
        overlap = (alert_cells & true_cells).sum()
        union = (alert_cells | true_cells).sum()
        print(f"\nstorm alert (cells above the 95th-percentile height):")
        print(f"  flagged {alert_cells.sum()} cells, "
              f"truth has {true_cells.sum()}; IoU "
              f"{overlap / max(union, 1):.2f}")
    print("\ngovernance reconstructed the field a decision layer can "
          "act on - from 12% coverage.")


if __name__ == "__main__":
    main()
