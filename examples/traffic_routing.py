"""The autonomous-taxi scenario: stochastic and multi-objective routing.

Reproduces the paper's flagship example (§I): a taxi must reach the
"airport" and the most "optimal" route depends on uncertainty and risk
preference.  The script builds the full paradigm as a
:class:`DecisionPipeline` with declared stage contracts:

1. **data** — simulate a GPS fleet over a road network and map-match
   the noisy traces (fusion),
2. **governance** — fit edge-centric *and* path-centric travel-time
   distributions (uncertainty quantification); the two models declare
   disjoint contracts, so the DAG scheduler fits them concurrently,
3. **analytics** — enumerate candidate routes and their travel-time
   distributions,
4. **decision** — compare route choices under a deadline, three risk
   profiles, a two-objective (time/energy) skyline, and an
   eco-driving plan.

Run with::

    python examples/traffic_routing.py
"""

import numpy as np

from repro import DecisionPipeline, RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import (
    EdgeCentricModel,
    PathCentricModel,
)
from repro.decision import (
    DeadlineUtility,
    EcoDrivingPlanner,
    RiskAverseUtility,
    RiskNeutralUtility,
    SkylineRouter,
    StochasticRouter,
)

DEPARTURE = 8 * 60  # morning rush


def collect_fleet(state):
    """data: simulate the world and a map-matched GPS fleet."""
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.12,
        rng=np.random.default_rng(1))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(2))
    matcher = HmmMapMatcher(network, sigma=0.08, beta=0.5)
    origin, destination = (0, 0), (5, 5)
    candidates = network.k_shortest_paths(origin, destination, 8)
    trips = []
    matched_ok = 0
    raw = generator.generate_on_paths(
        candidates * 40, departure_minute=DEPARTURE,
        sample_interval=0.4, noise_sigma=0.05)
    times_rng = np.random.default_rng(3)
    for true_path, trajectory in raw:
        matched = matcher.matched_path(trajectory)
        if network.route_distance(true_path, matched) < 0.2:
            matched_ok += 1
        edges = network.path_edges(true_path)
        # Traversal times recovered from the trajectory clock.
        times = simulator.sample_edge_times(edges, DEPARTURE,
                                            rng=times_rng)
        trips.append((true_path, times, float(DEPARTURE)))
    state.update(network=network, simulator=simulator, origin=origin,
                 destination=destination, trips=trips)
    return (f"{len(raw)} trips, map matching recovered the route for "
            f"{matched_ok / len(raw):.0%}")


def fit_edge_model(state):
    """governance: edge-centric travel-time distributions."""
    model = EdgeCentricModel().fit(state["trips"])
    state["edge_model"] = model
    return f"edge-centric model covers {model.n_edges} edges"


def fit_path_model(state):
    """governance: path-centric distributions (runs concurrently)."""
    model = PathCentricModel(min_support=10,
                             max_subpath_edges=10).fit(state["trips"])
    state["path_model"] = model
    return f"path-centric model learned {model.n_subpaths} sub-paths"


def candidate_routes(state):
    """analytics: candidate routes + their cost distributions."""
    router = StochasticRouter(state["network"], state["path_model"],
                              n_candidates=8)
    mean_path, mean_dist = router.mean_cost_route(
        state["origin"], state["destination"],
        departure_minute=DEPARTURE)
    state.update(router=router, mean_path=mean_path,
                 mean_dist=mean_dist)
    return (f"fastest-on-average route: mean {mean_dist.mean():.1f} "
            f"min, std {mean_dist.std():.1f} min")


def risk_profiles(state):
    """decision: deadline + three risk preferences."""
    router, mean_dist = state["router"], state["mean_dist"]
    deadline = mean_dist.quantile(0.85)
    path, probability = router.on_time_route(
        state["origin"], state["destination"], deadline,
        departure_minute=DEPARTURE)
    lines = [f"deadline {deadline:.1f} min -> best on-time route has "
             f"P(on time) = {probability:.2f}"]
    for label, utility in [
        ("risk-neutral", RiskNeutralUtility()),
        ("risk-averse ", RiskAverseUtility(aversion=2.0,
                                           scale=mean_dist.mean())),
        ("deadline    ", DeadlineUtility(deadline)),
    ]:
        chosen, distribution, _ = router.best_path(
            state["origin"], state["destination"], utility,
            departure_minute=DEPARTURE)
        lines.append(f"  {label}: mean {distribution.mean():5.1f} min, "
                     f"std {distribution.std():4.1f} min, "
                     f"{len(chosen) - 1} edges")
    state["profile_lines"] = lines
    return f"compared 3 risk profiles against deadline {deadline:.1f} min"


def time_energy_skyline(state):
    """decision: multi-objective route skyline (annotates the network)."""
    network, simulator = state["network"], state["simulator"]
    rng = np.random.default_rng(4)
    for u, v in network.edges():
        length = network.edge_length(u, v)
        speed = simulator.free_flow_speed(u, v)
        network.set_edge_attribute(u, v, "time", length / speed)
        network.set_edge_attribute(u, v, "energy",
                                   length * rng.uniform(0.6, 1.6))
    skyline = SkylineRouter(network, ["time", "energy"],
                            max_labels=32).skyline(state["origin"],
                                                   (3, 3))
    state["skyline"] = sorted(skyline, key=lambda item: item[1][0])
    return f"{len(skyline)} non-dominated time/energy routes to the depot"


def eco_driving(state):
    """decision: spend deadline slack on fuel along the chosen route."""
    network = state["network"]
    segments = [
        (10 * network.edge_length(u, v), 110.0)
        for u, v in network.path_edges(state["mean_path"])
    ]
    planner = EcoDrivingPlanner()
    hurried = planner.baseline_at_limits(segments)
    saved, eco, _ = planner.savings(segments,
                                    hurried["travel_time"] * 1.25)
    state["eco"] = (hurried, eco, saved)
    return f"eco plan saves {saved:.0%} fuel with 25% time slack"


def build_pipeline():
    pipeline = DecisionPipeline("autonomous taxi routing")
    pipeline.add_data(
        "fleet", collect_fleet, reads=(),
        writes=("network", "simulator", "origin", "destination",
                "trips"))
    pipeline.add_governance(
        "edge_model", fit_edge_model,
        reads=("trips",), writes=("edge_model",))
    pipeline.add_governance(
        "path_model", fit_path_model,
        reads=("trips",), writes=("path_model",))
    pipeline.add_analytics(
        "routes", candidate_routes,
        reads=("network", "path_model", "origin", "destination"),
        writes=("router", "mean_path", "mean_dist"))
    pipeline.add_decision(
        "risk_profiles", risk_profiles,
        reads=("router", "mean_dist", "origin", "destination"),
        writes=("profile_lines",))
    pipeline.add_decision(
        "skyline", time_energy_skyline,
        reads=("network", "simulator", "origin"),
        writes=("skyline", "network"))
    pipeline.add_decision(
        "eco_driving", eco_driving,
        reads=("network", "mean_path"), writes=("eco",))
    return pipeline


def main():
    pipeline = build_pipeline()
    state, report = pipeline.run()
    print(report.render())

    print("\ndecision under uncertainty:")
    for line in state["profile_lines"]:
        print(f"  {line}")

    print("\ntime/energy skyline to the depot:")
    for route, cost in state["skyline"]:
        print(f"  time {cost[0]:5.2f}  energy {cost[1]:5.2f}  "
              f"({len(route) - 1} edges)")

    hurried, eco, saved = state["eco"]
    print("\neco-driving the chosen route with 25% time slack:")
    print(f"  at the limits: {hurried['fuel']:8.1f} fuel, "
          f"{hurried['travel_time']:.2f} h")
    print(f"  eco plan:      {eco['fuel']:8.1f} fuel, "
          f"{eco['travel_time']:.2f} h  ({saved:.0%} fuel saved)")


if __name__ == "__main__":
    main()
