"""The autonomous-taxi scenario: stochastic and multi-objective routing.

Reproduces the paper's flagship example (§I): a taxi must reach the
"airport" and the most "optimal" route depends on uncertainty and risk
preference.  The script walks the full paradigm:

1. **data** — simulate a GPS fleet over a road network,
2. **governance** — map-match the noisy traces (fusion) and fit
   edge-centric *and* path-centric travel-time distributions
   (uncertainty quantification),
3. **decision** — compare route choices under a deadline, three risk
   profiles, and a two-objective (time/energy) skyline.

Run with::

    python examples/traffic_routing.py
"""

import numpy as np

from repro import RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import (
    EdgeCentricModel,
    PathCentricModel,
)
from repro.decision import (
    DeadlineUtility,
    RiskAverseUtility,
    RiskNeutralUtility,
    SkylineRouter,
    StochasticRouter,
)

DEPARTURE = 8 * 60  # morning rush


def build_world():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.12,
        rng=np.random.default_rng(1))
    return network, simulator


def collect_fleet_data(network, simulator):
    """Noisy GPS traces, map-matched back onto the network."""
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(2))
    matcher = HmmMapMatcher(network, sigma=0.08, beta=0.5)
    origin, destination = (0, 0), (5, 5)
    candidates = network.k_shortest_paths(origin, destination, 8)
    trips = []
    matched_ok = 0
    raw = generator.generate_on_paths(
        candidates * 40, departure_minute=DEPARTURE,
        sample_interval=0.4, noise_sigma=0.05)
    times_rng = np.random.default_rng(3)
    for true_path, trajectory in raw:
        matched = matcher.matched_path(trajectory)
        if network.route_distance(true_path, matched) < 0.2:
            matched_ok += 1
        edges = network.path_edges(true_path)
        # Traversal times recovered from the trajectory clock.
        times = simulator.sample_edge_times(edges, DEPARTURE,
                                            rng=times_rng)
        trips.append((true_path, times, float(DEPARTURE)))
    print(f"fleet: {len(raw)} trips, map matching recovered the route "
          f"for {matched_ok / len(raw):.0%} of them")
    return origin, destination, trips


def main():
    network, simulator = build_world()
    origin, destination, trips = collect_fleet_data(network, simulator)

    edge_model = EdgeCentricModel().fit(trips)
    path_model = PathCentricModel(min_support=10,
                                  max_subpath_edges=10).fit(trips)
    print(f"uncertainty: edge-centric covers {edge_model.n_edges} edges; "
          f"path-centric learned {path_model.n_subpaths} sub-paths")

    router = StochasticRouter(network, path_model, n_candidates=8)
    mean_path, mean_dist = router.mean_cost_route(
        origin, destination, departure_minute=DEPARTURE)
    print(f"\nfastest-on-average route: mean {mean_dist.mean():.1f} min, "
          f"std {mean_dist.std():.1f} min")

    # Decision under uncertainty: deadline + risk profiles.
    deadline = mean_dist.quantile(0.85)
    path, probability = router.on_time_route(
        origin, destination, deadline, departure_minute=DEPARTURE)
    print(f"deadline {deadline:.1f} min -> best on-time route has "
          f"P(on time) = {probability:.2f}")

    for label, utility in [
        ("risk-neutral", RiskNeutralUtility()),
        ("risk-averse ", RiskAverseUtility(aversion=2.0,
                                           scale=mean_dist.mean())),
        ("deadline    ", DeadlineUtility(deadline)),
    ]:
        chosen, distribution, _ = router.best_path(
            origin, destination, utility, departure_minute=DEPARTURE)
        print(f"  {label}: mean {distribution.mean():5.1f} min, "
              f"std {distribution.std():4.1f} min, "
              f"{len(chosen) - 1} edges")

    # Multi-objective: expose the time/energy trade-off.
    rng = np.random.default_rng(4)
    for u, v in network.edges():
        length = network.edge_length(u, v)
        speed = simulator.free_flow_speed(u, v)
        network.set_edge_attribute(u, v, "time", length / speed)
        network.set_edge_attribute(u, v, "energy",
                                   length * rng.uniform(0.6, 1.6))
    skyline = SkylineRouter(network, ["time", "energy"],
                            max_labels=32).skyline(origin, (3, 3))
    print(f"\ntime/energy skyline to the depot: "
          f"{len(skyline)} non-dominated routes")
    for route, cost in sorted(skyline, key=lambda item: item[1][0]):
        print(f"  time {cost[0]:5.2f}  energy {cost[1]:5.2f}  "
              f"({len(route) - 1} edges)")

    # Eco-driving along the chosen route: spend deadline slack on fuel.
    from repro.decision import EcoDrivingPlanner

    segments = [
        (10 * network.edge_length(u, v), 110.0)
        for u, v in network.path_edges(mean_path)
    ]
    planner = EcoDrivingPlanner()
    hurried = planner.baseline_at_limits(segments)
    saved, eco, _ = planner.savings(segments,
                                    hurried["travel_time"] * 1.25)
    print(f"\neco-driving the chosen route with 25% time slack:")
    print(f"  at the limits: {hurried['fuel']:8.1f} fuel, "
          f"{hurried['travel_time']:.2f} h")
    print(f"  eco plan:      {eco['fuel']:8.1f} fuel, "
          f"{eco['travel_time']:.2f} h  ({saved:.0%} fuel saved)")


if __name__ == "__main__":
    main()
