"""The MagicScaler scenario: uncertainty-aware predictive autoscaling.

Reproduces the paper's cloud example (§I, [6]): resource scaling
decisions made from probabilistic demand forecasts "maintain service
quality while minimizing energy consumption".  Capacity takes an hour
to come online, so a reactive policy structurally lags the morning
ramp and the recurring evening batch spike; the predictive policy
anticipates both and provisions the demand distribution's tail
quantile.

The scenario runs as a :class:`DecisionPipeline` with declared stage
contracts: the probabilistic-forecast peek (analytics) and the policy
simulations (decision) both read only the demand trace, so the DAG
scheduler runs them concurrently.

Run with::

    python examples/cloud_autoscaling.py
"""

import numpy as np

from repro import DecisionPipeline
from repro.datasets import cloud_demand_dataset
from repro.analytics.forecasting import GaussianForecaster
from repro.decision import (
    FixedScaler,
    PredictiveScaler,
    ReactiveScaler,
    simulate_scaling,
)

LEAD_STEPS = 6          # capacity lead time: 6 x 10 min = 1 hour
STEPS_PER_DAY = 144


def load_demand(state):
    """data: twelve days of demand with surges and scheduled spikes."""
    demand, burst_steps = cloud_demand_dataset(
        n_days=12, daily_amplitude=80.0, burst_rate_per_day=0.5,
        daily_spike_height=250.0, rng=np.random.default_rng(6))
    state["demand"] = demand
    state["burst_steps"] = burst_steps
    values = demand.values[:, 0]
    return (f"{len(demand)} steps over 12 days, mean "
            f"{values.mean():.0f}, peak {values.max():.0f} req/s, "
            f"{burst_steps.sum()} surge steps")


def forecast_peek(state):
    """analytics: the probabilistic forecast the scaler consumes."""
    train = state["demand"].slice(0, 10 * STEPS_PER_DAY)
    forecaster = GaussianForecaster(
        n_lags=24, seasonal_period=STEPS_PER_DAY).fit(train)
    state["distributions"] = forecaster.predict_distribution(LEAD_STEPS)
    tail = state["distributions"][-1]
    return (f"next hour: mean ends at {tail.mean():.0f}, "
            f"95th pct {tail.quantile(0.95):.0f} req/s")


def simulate_policies(state):
    """decision: fixed vs reactive vs predictive scaling policies."""
    demand = state["demand"]
    values = demand.values[:, 0]
    policies = [
        ("fixed @ 95% of peak",
         FixedScaler(float(values.max()) * 0.95)),
        ("reactive (headroom 1.3)", ReactiveScaler(headroom=1.3)),
        ("reactive (headroom 1.6)", ReactiveScaler(headroom=1.6)),
        ("predictive (SLO 5%)",
         PredictiveScaler(slo_target=0.05, seasonal_period=STEPS_PER_DAY,
                          horizon=LEAD_STEPS)),
        ("predictive (SLO 2%)",
         PredictiveScaler(slo_target=0.02, seasonal_period=STEPS_PER_DAY,
                          horizon=LEAD_STEPS)),
    ]
    rows = []
    for name, scaler in policies:
        result = simulate_scaling(demand, scaler,
                                  warmup=3 * STEPS_PER_DAY,
                                  lead_time=LEAD_STEPS)
        rows.append((name, result))
    state["policy_rows"] = rows
    return f"simulated {len(rows)} scaling policies"


def build_pipeline():
    pipeline = DecisionPipeline("uncertainty-aware autoscaling")
    pipeline.add_data("demand", load_demand,
                      reads=(), writes=("demand", "burst_steps"))
    pipeline.add_analytics("forecast", forecast_peek,
                           reads=("demand",),
                           writes=("distributions",))
    pipeline.add_decision("policies", simulate_policies,
                          reads=("demand",), writes=("policy_rows",))
    return pipeline


def main():
    pipeline = build_pipeline()
    state, report = pipeline.run()
    print(report.render())

    print("\nforecast for the next hour (10-minute steps):")
    for step, distribution in enumerate(state["distributions"],
                                        start=1):
        print(f"  +{10 * step:3d} min: mean {distribution.mean():6.1f}, "
              f"95th pct {distribution.quantile(0.95):6.1f}")

    print(f"\nscaling policies (capacity lead time: {10 * LEAD_STEPS} "
          "minutes):")
    header = (f"  {'policy':28s}{'violations':>12s}{'capacity':>10s}"
              f"{'overprov':>10s}{'actions':>9s}")
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name, result in state["policy_rows"]:
        print(f"  {name:28s}{result['violations']:12.3f}"
              f"{result['mean_capacity']:10.1f}"
              f"{result['mean_overprovision']:10.1f}"
              f"{result['scaling_actions']:9d}")

    print("\nreading: the predictive scaler reaches violation levels the "
          "reactive one cannot, at *lower* mean capacity - the "
          "uncertainty-aware, proactive decision making of [6].")


if __name__ == "__main__":
    main()
