"""Resource-efficient analytics for edge devices.

Reproduces the resource-efficiency storyline of §II-C: privacy pushes
analytics onto edge devices with hard memory budgets and no retraining
capability.  Three mechanisms, end to end:

* **LightTS [47]** — distill an accurate teacher ensemble into a tiny
  quantized student that fits a byte budget;
* **TimeDC [49]** — condense the training archive ~16x so future
  retraining is cheap;
* **QCore [48]** — when the data distribution drifts in the field,
  recalibrate the quantized model's scales (a handful of floats)
  instead of shipping a new model.

Run with::

    python examples/edge_deployment.py
"""

import numpy as np

from repro.datasets.classification import waveform_classification_dataset
from repro.analytics.classification import LightTsDistiller, RocketClassifier
from repro.analytics.efficiency import QuantizedLinear, TimeSeriesCondenser


def main():
    Xtr, ytr = waveform_classification_dataset(
        60, 96, 4, rng=np.random.default_rng(0))
    Xte, yte = waveform_classification_dataset(
        30, 96, 4, rng=np.random.default_rng(1))
    print(f"workload: {len(Xtr)} training series, 4 classes\n")

    # --- LightTS: adaptive ensemble distillation under a byte budget.
    budget = 200
    distiller = LightTsDistiller(
        teacher_sizes=(120, 180, 240), student_kernels=25,
        rng=np.random.default_rng(2))
    distiller.fit_for_budget(Xtr, ytr, budget_bytes=budget)
    print("LightTS distillation:")
    print(f"  teacher ensemble: {distiller.teacher_size_bytes:7d} B, "
          f"accuracy {distiller.teacher_score(Xte, yte):.3f}")
    print(f"  student ({distiller.bits}-bit):  "
          f"{distiller.student_size_bytes:7d} B, "
          f"accuracy {distiller.score(Xte, yte):.3f} "
          f"(budget {budget} B)")
    ratio = distiller.teacher_size_bytes / distiller.student_size_bytes
    print(f"  compression: {ratio:.0f}x\n")

    # --- TimeDC: dataset condensation for cheap on-device retraining.
    condenser = TimeSeriesCondenser(n_condensed=4,
                                    rng=np.random.default_rng(3))
    Xc, yc = condenser.fit_labeled(Xtr, ytr)
    full = RocketClassifier(150, rng=np.random.default_rng(4))
    full.fit(Xtr, ytr)
    small = RocketClassifier(150, rng=np.random.default_rng(4))
    small.fit(Xc, yc)
    print("TimeDC condensation:")
    print(f"  full archive:  {len(Xtr):4d} series -> accuracy "
          f"{full.score(Xte, yte):.3f}")
    print(f"  condensed set: {len(Xc):4d} series -> accuracy "
          f"{small.score(Xte, yte):.3f} "
          f"({len(Xtr) / len(Xc):.0f}x smaller)\n")

    # --- QCore: continual calibration of the quantized model under
    # drift, without touching the integer weights.
    rng = np.random.default_rng(5)
    weights = rng.normal(size=(12, 3))
    device_model = QuantizedLinear(weights, np.zeros(3), bits=8)
    inputs = rng.normal(size=(400, 12))
    drifted_targets = inputs @ (1.35 * weights) + 0.4  # the world moved
    before = np.abs(device_model.predict(inputs)
                    - drifted_targets).mean()
    codes_before = device_model.codes.copy()
    device_model.calibrate(inputs, drifted_targets)
    after = np.abs(device_model.predict(inputs) - drifted_targets).mean()
    print("QCore continual calibration under drift:")
    print(f"  error before calibration: {before:.3f}")
    print(f"  error after  calibration: {after:.3f} "
          f"(integer weights untouched: "
          f"{bool(np.array_equal(device_model.codes, codes_before))})")


if __name__ == "__main__":
    main()
