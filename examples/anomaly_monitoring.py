"""Robust, explainable anomaly monitoring on contaminated sensor data.

Reproduces the robustness + explainability storyline of §II-C: an
operations team must detect anomalies in sensor streams, but the
*training* archive itself contains outliers (no one ever cleaned it),
and every alarm must say *which channel* misbehaved.

* robust autoencoders [34, 35] train on the dirty archive;
* ensembles [41, 42] stabilize the scores;
* the post-hoc explainability metric of [35] verifies that
  reconstruction errors localize the offending channel.

Run with::

    python examples/anomaly_monitoring.py
"""

import numpy as np

from repro.datasets import inject_anomalies, seasonal_series
from repro.analytics.anomaly import (
    AutoencoderDetector,
    DiversityDrivenEnsembleDetector,
    RobustAutoencoderDetector,
    SpectralResidualDetector,
)
from repro.analytics.explainability import (
    explanation_accuracy,
    inject_channel_anomalies,
)
from repro.analytics.metrics import (
    best_f1,
    point_adjusted_scores,
    roc_auc,
)


def main():
    rng_archive = np.random.default_rng(30)
    archive_clean = seasonal_series(1200, rng=rng_archive)
    archive, _ = inject_anomalies(archive_clean, 0.1,
                                  rng=np.random.default_rng(31))
    print(f"training archive: {len(archive)} steps, ~10% contaminated "
          "(nobody cleaned it)")

    live_clean = seasonal_series(600, rng=np.random.default_rng(32))
    live, labels = inject_anomalies(live_clean, 0.05,
                                    rng=np.random.default_rng(33))
    print(f"live stream: {len(live)} steps, {labels.sum()} anomalous\n")

    detectors = [
        ("spectral residual (no training)", SpectralResidualDetector()),
        ("vanilla autoencoder", AutoencoderDetector(
            window=24, n_hidden=48, n_latent=12, n_epochs=60,
            learning_rate=0.01, rng=np.random.default_rng(34))),
        ("robust autoencoder [34,35]", RobustAutoencoderDetector(
            window=24, n_hidden=48, n_latent=12, n_epochs=60,
            learning_rate=0.01, trim_fraction=0.3,
            rng=np.random.default_rng(34))),
        ("diversity-driven ensemble [42]", DiversityDrivenEnsembleDetector(
            n_members=4, pool_size=8, window=24, n_epochs=25,
            rng=np.random.default_rng(35))),
    ]
    print(f"{'detector':34s}{'best F1':>9s}{'ROC-AUC':>9s}")
    print("-" * 52)
    for name, detector in detectors:
        detector.fit(archive)
        scores = point_adjusted_scores(labels, detector.score(live))
        f1, _ = best_f1(labels, scores)
        auc = roc_auc(labels, scores)
        print(f"{name:34s}{f1:9.3f}{auc:9.3f}")

    # Explainability: do the errors point at the right channel?
    multi_clean = seasonal_series(900, n_channels=3,
                                  rng=np.random.default_rng(36))
    live_multi, cells = inject_channel_anomalies(
        seasonal_series(400, n_channels=3,
                        rng=np.random.default_rng(37)),
        0.05, rng=np.random.default_rng(38))
    explainer = AutoencoderDetector(window=16, n_epochs=40,
                                    rng=np.random.default_rng(39))
    explainer.fit(multi_clean)
    accuracy = explanation_accuracy(
        explainer.feature_errors(live_multi), cells)
    print(f"\nexplanation accuracy (per-channel localization AUC): "
          f"{accuracy:.3f}")
    print("an operator seeing an alarm also sees *which* sensor channel "
          "caused it - the explainability requirement of Sec. II-C.")


if __name__ == "__main__":
    main()
