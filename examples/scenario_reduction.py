"""Scenario reduction: k<<N stochastic decisions without regret.

A fleet's posterior-predictive travel-time ensemble has hundreds of
Monte-Carlo scenarios per route, but a dispatcher evaluating deadline
utilities cannot afford an O(N^2 * |grid|) dominance sweep per query.
Heitsch-Romisch forward selection under the exact 1-D Wasserstein
distance compresses the ensemble to ``k`` weighted representatives;
the reduced decision provably tracks the full one (zero value regret
on this workload), and the surviving scenarios drive fan-chart /
rank-plot summaries for the operator.

Run with::

    python examples/scenario_reduction.py
"""

import numpy as np

from repro.decision import (
    fan_chart,
    rank_plot,
    reduce_scenarios,
    select_best,
    wasserstein_distance,
)
from repro.decision.utility import DeadlineUtility, RiskAverseUtility
from repro.governance.uncertainty import Histogram


def make_ensemble(n, rng):
    """``n`` Monte-Carlo travel-time scenarios on one shared grid."""
    scenarios = []
    for _ in range(n):
        shape = rng.uniform(2.0, 9.0)
        scale = rng.uniform(0.8, 2.5)
        samples = rng.gamma(shape, scale, 400) + rng.uniform(0.0, 6.0)
        scenarios.append(Histogram.from_samples(
            samples, n_bins=120, bounds=(0.0, 60.0)))
    return scenarios


def main():
    rng = np.random.default_rng(17)
    ensemble = make_ensemble(400, rng)
    print(f"Monte-Carlo ensemble: {len(ensemble)} travel-time "
          "scenarios")

    reduction = reduce_scenarios(ensemble, 20)
    print(f"reduced to k={reduction.n_reduced} representatives, "
          f"W1 distortion {reduction.distortion:.3f} min")
    survivors = [ensemble[i] for i in reduction.indices]
    heaviest = int(np.argmax(reduction.probabilities))
    print(f"heaviest representative carries "
          f"{reduction.probabilities[heaviest]:.1%} of the mass "
          f"(mean {survivors[heaviest].mean():.1f} min)")

    gap = wasserstein_distance(survivors[heaviest],
                               ensemble[int(reduction.indices[0])])
    print(f"W1 between the two lead representatives: {gap:.2f} min\n")

    print("decision regret check (full vs reduced ensemble):")
    for utility in (DeadlineUtility(7.0), DeadlineUtility(10.0),
                    RiskAverseUtility(aversion=0.3, scale=10.0)):
        full_index, full_value, _ = select_best(ensemble, utility)
        red_index, red_value, _ = select_best(ensemble, utility,
                                              reduction=reduction)
        print(f"  {type(utility).__name__:20s} "
              f"full={full_value:9.4f}  reduced={red_value:9.4f}  "
              f"regret={abs(full_value - red_value):.2e}")

    horizon = np.linspace(0.0, 2.0 * np.pi, 48)
    trajectories = np.asarray([
        rng.uniform(0.5, 2.0) * np.sin(horizon + rng.uniform(0, 6.28))
        + rng.normal(0.0, 0.15, 48)
        for _ in range(120)
    ])
    chart = fan_chart(trajectories)
    ranks = rank_plot(trajectories)
    median = np.asarray(chart["bands"]["0.5"])
    spread = (np.asarray(chart["bands"]["0.95"]) -
              np.asarray(chart["bands"]["0.05"]))
    print(f"\nfan chart over {chart['n_scenarios']} speed "
          f"trajectories: median in [{median.min():.2f}, "
          f"{median.max():.2f}], mean 5-95% spread "
          f"{spread.mean():.2f}")
    print(f"rank plot: most central trajectory is "
          f"#{ranks['order'][0]}")


if __name__ == "__main__":
    main()
