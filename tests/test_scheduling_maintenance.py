"""Tests for autoscaling and predictive maintenance decisions."""

import numpy as np
import pytest

from repro.datasets import cloud_demand_dataset
from repro.decision import (
    FixedScaler,
    PeriodicPolicy,
    PredictivePolicy,
    PredictiveScaler,
    ReactiveScaler,
    RunToFailurePolicy,
    degradation_process,
    simulate_maintenance,
    simulate_scaling,
)


@pytest.fixture(scope="module")
def spiky_demand():
    series, _ = cloud_demand_dataset(
        n_days=12, daily_amplitude=80.0, burst_rate_per_day=0.5,
        daily_spike_height=250.0, rng=np.random.default_rng(6))
    return series


class TestScalers:
    def test_fixed_scaler_constant(self):
        scaler = FixedScaler(100.0)
        assert scaler.decide([1, 2, 3]) == 100.0

    def test_reactive_tracks_recent_max(self):
        scaler = ReactiveScaler(headroom=1.5, window=2)
        assert scaler.decide([10.0, 20.0, 30.0]) == pytest.approx(45.0)

    def test_predictive_cold_start_reactive(self):
        scaler = PredictiveScaler(n_lags=24, horizon=3)
        capacity = scaler.decide(np.full(10, 50.0))
        assert capacity == pytest.approx(60.0)

    def test_predictive_anticipates_seasonal_spike(self, spiky_demand):
        """E23's headline: at the same violation level the predictive
        scaler needs far less capacity than the reactive one, because it
        anticipates the recurring spike."""
        predictive = simulate_scaling(
            spiky_demand,
            PredictiveScaler(slo_target=0.02, seasonal_period=144,
                             horizon=6),
            warmup=144 * 3, lead_time=6)
        reactive = simulate_scaling(
            spiky_demand, ReactiveScaler(headroom=1.6),
            warmup=144 * 3, lead_time=6)
        # The reactive policy provisions *more* capacity yet violates
        # at least as often: the predictive policy Pareto-dominates it.
        assert predictive["mean_capacity"] < reactive["mean_capacity"]
        assert predictive["violations"] <= reactive["violations"] + 0.005

    def test_tighter_slo_provisions_more(self, spiky_demand):
        loose = simulate_scaling(
            spiky_demand,
            PredictiveScaler(slo_target=0.2, seasonal_period=144,
                             horizon=6),
            warmup=144 * 3, lead_time=6)
        tight = simulate_scaling(
            spiky_demand,
            PredictiveScaler(slo_target=0.02, seasonal_period=144,
                             horizon=6),
            warmup=144 * 3, lead_time=6)
        assert tight["mean_capacity"] > loose["mean_capacity"]
        assert tight["violations"] <= loose["violations"]

    def test_simulation_metrics_consistent(self, spiky_demand):
        result = simulate_scaling(spiky_demand, FixedScaler(10.0),
                                  warmup=300, lead_time=3)
        # A ridiculously low fixed capacity violates almost always.
        assert result["violations"] > 0.9
        assert result["mean_capacity"] == pytest.approx(10.0)

    def test_simulation_validation(self, spiky_demand):
        with pytest.raises(ValueError):
            simulate_scaling(np.zeros(10), FixedScaler(1.0), warmup=20)
        with pytest.raises(ValueError):
            simulate_scaling(spiky_demand, FixedScaler(1.0),
                             warmup=100, lead_time=0)


class TestMaintenance:
    @pytest.fixture(scope="class")
    def wear(self):
        return degradation_process(3000, rng=np.random.default_rng(7))

    def test_predictive_prevents_failures(self, wear):
        result = simulate_maintenance(wear, PredictivePolicy(0.75),
                                      rng=np.random.default_rng(8))
        baseline = simulate_maintenance(wear, RunToFailurePolicy(),
                                        rng=np.random.default_rng(8))
        assert result["failures"] < baseline["failures"]
        assert result["total_cost"] < baseline["total_cost"]

    def test_cost_ordering_matches_paper_story(self, wear):
        """Predictive < periodic < run-to-failure in realized cost."""
        costs = {}
        for name, policy in [
            ("run_to_failure", RunToFailurePolicy()),
            ("periodic", PeriodicPolicy(250)),
            ("predictive", PredictivePolicy(0.75)),
        ]:
            costs[name] = simulate_maintenance(
                wear, policy, rng=np.random.default_rng(9))["total_cost"]
        assert costs["predictive"] < costs["periodic"]
        assert costs["periodic"] < costs["run_to_failure"]

    def test_periodic_services_on_schedule(self, wear):
        result = simulate_maintenance(wear, PeriodicPolicy(500),
                                      rng=np.random.default_rng(10))
        assert result["services"] >= len(wear) // 500 - 2

    def test_availability_bounds(self, wear):
        result = simulate_maintenance(wear, PredictivePolicy(0.7),
                                      rng=np.random.default_rng(11))
        assert 0.0 <= result["availability"] <= 1.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PredictivePolicy(1.5)
        with pytest.raises(ValueError):
            PeriodicPolicy(0)

    def test_degradation_increments_nonnegative(self, wear):
        assert np.all(wear >= 0)
