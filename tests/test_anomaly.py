"""Tests for the anomaly-detection family."""

import numpy as np
import pytest

from repro import TimeSeries
from repro.datasets import inject_anomalies, seasonal_series
from repro.analytics.anomaly import (
    AutoencoderDetector,
    DiversityDrivenEnsembleDetector,
    RandomizedEnsembleDetector,
    RobustAutoencoderDetector,
    SpectralResidualDetector,
)
from repro.analytics.metrics import point_adjusted_scores, roc_auc


@pytest.fixture(scope="module")
def workload():
    train = seasonal_series(1200, rng=np.random.default_rng(0))
    test_clean = seasonal_series(600, rng=np.random.default_rng(1))
    test, labels = inject_anomalies(test_clean, 0.05,
                                    rng=np.random.default_rng(2))
    return train, test, labels


def detector_auc(detector, train, test, labels):
    detector.fit(train)
    scores = point_adjusted_scores(labels, detector.score(test))
    return roc_auc(labels, scores)


class TestAutoencoderDetector:
    def test_detects_injected_anomalies(self, workload):
        train, test, labels = workload
        auc = detector_auc(
            AutoencoderDetector(window=24, n_epochs=40,
                                rng=np.random.default_rng(3)),
            train, test, labels)
        assert auc > 0.85

    def test_spike_localization(self):
        rng = np.random.default_rng(4)
        values = np.sin(2 * np.pi * np.arange(600) / 96)
        values += 0.05 * rng.normal(size=600)
        train = TimeSeries(values.copy())
        spiked = values.copy()
        spiked[300] += 5.0
        detector = AutoencoderDetector(window=24, n_epochs=40,
                                       rng=np.random.default_rng(5))
        detector.fit(train)
        scores = detector.score(TimeSeries(spiked))
        assert np.argmax(scores) == 300

    def test_score_length_matches_series(self, workload):
        train, test, _ = workload
        detector = AutoencoderDetector(window=16, n_epochs=10,
                                       rng=np.random.default_rng(6))
        detector.fit(train)
        assert detector.score(test).shape == (len(test),)

    def test_feature_errors_shape(self, workload):
        train, test, _ = workload
        detector = AutoencoderDetector(window=16, n_epochs=10,
                                       rng=np.random.default_rng(7))
        detector.fit(train)
        errors = detector.feature_errors(test)
        assert errors.shape == (len(test), test.n_channels)
        assert np.all(errors >= 0)

    def test_requires_fit(self, workload):
        _, test, _ = workload
        with pytest.raises(RuntimeError):
            AutoencoderDetector().score(test)

    def test_rejects_incomplete(self):
        gappy = TimeSeries(np.concatenate([[np.nan], np.zeros(100)]))
        with pytest.raises(ValueError):
            AutoencoderDetector(window=8).fit(gappy)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            AutoencoderDetector(window=50).fit(TimeSeries(np.zeros(20)))

    def test_training_loss_decreases(self, workload):
        train, _, _ = workload
        detector = AutoencoderDetector(window=24, n_epochs=30,
                                       rng=np.random.default_rng(8))
        detector.fit(train)
        losses = detector._network.training_losses
        assert losses[-1] < losses[0]


class TestRobustDetector:
    def test_robust_survives_contaminated_training(self):
        """E11's claim: trimmed training stays effective when the
        training data is contaminated (aggregated over seeds - single
        draws are noisy)."""
        kwargs = dict(window=24, n_hidden=48, n_latent=12, n_epochs=60,
                      learning_rate=0.01)
        vanilla_scores, robust_scores = [], []
        for seed in (9, 30, 50):
            clean = seasonal_series(1000, rng=np.random.default_rng(seed))
            dirty, _ = inject_anomalies(
                clean, 0.1, rng=np.random.default_rng(seed + 1))
            test_clean = seasonal_series(
                500, rng=np.random.default_rng(seed + 2))
            test, labels = inject_anomalies(
                test_clean, 0.05, rng=np.random.default_rng(seed + 3))
            vanilla_scores.append(detector_auc(
                AutoencoderDetector(rng=np.random.default_rng(seed + 4),
                                    **kwargs),
                dirty, test, labels))
            robust_scores.append(detector_auc(
                RobustAutoencoderDetector(
                    trim_fraction=0.3, rng=np.random.default_rng(seed + 4),
                    **kwargs),
                dirty, test, labels))
        assert np.mean(robust_scores) >= np.mean(vanilla_scores) - 0.01

    def test_trimming_noop_on_clean_data(self):
        """The MAD criterion barely trims when training data is clean,
        so the robust detector matches the vanilla one there."""
        clean = seasonal_series(800, rng=np.random.default_rng(40))
        detector = RobustAutoencoderDetector(
            window=16, trim_fraction=0.3, warmup_epochs=0, n_epochs=5,
            rng=np.random.default_rng(41))
        detector.fit(clean)
        flat = detector._standardize(detector._window_matrix(clean, 1))
        weights = detector._sample_weights(flat, epoch=10)
        assert weights.mean() > 0.9

    def test_trimming_weights_zero_out_outliers(self):
        rng = np.random.default_rng(14)
        detector = RobustAutoencoderDetector(
            window=8, trim_fraction=0.2, warmup_epochs=0, n_epochs=5,
            rng=rng)
        clean = seasonal_series(400, rng=np.random.default_rng(15))
        detector.fit(clean)
        flat = detector._window_matrix(clean, 1)
        standardized = detector._standardize(flat)
        weights = detector._sample_weights(standardized, epoch=10)
        assert (weights == 0).sum() > 0
        assert (weights == 1).sum() > 0

    def test_soft_mode_downweights(self):
        detector = RobustAutoencoderDetector(
            window=8, trim_fraction=0.2, warmup_epochs=0, soft=True,
            soft_weight=0.25, n_epochs=3, rng=np.random.default_rng(16))
        clean = seasonal_series(300, rng=np.random.default_rng(17))
        detector.fit(clean)
        flat = detector._standardize(detector._window_matrix(clean, 1))
        weights = detector._sample_weights(flat, epoch=10)
        assert set(np.unique(weights)) <= {0.25, 1.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            RobustAutoencoderDetector(trim_fraction=1.0)


class TestEnsembles:
    def test_randomized_ensemble_detects(self, workload):
        train, test, labels = workload
        auc = detector_auc(
            RandomizedEnsembleDetector(n_members=5, window=24,
                                       n_epochs=20,
                                       rng=np.random.default_rng(18)),
            train, test, labels)
        assert auc > 0.8

    def test_members_are_diverse(self, workload):
        train, _, _ = workload
        ensemble = RandomizedEnsembleDetector(
            n_members=4, window=24, n_epochs=5,
            rng=np.random.default_rng(19))
        ensemble.fit(train)
        latents = {m.n_latent for m in ensemble.members}
        masks = {tuple(m._mask) for m in ensemble.members}
        assert len(masks) == 4 or len(latents) > 1

    def test_diversity_selection_prefers_uncorrelated(self, workload):
        train, _, _ = workload
        ensemble = DiversityDrivenEnsembleDetector(
            n_members=3, pool_size=6, window=24, n_epochs=5,
            rng=np.random.default_rng(20))
        ensemble.fit(train)
        assert len(ensemble.members) == 3
        assert len(set(ensemble.selected_indices_)) == 3

    def test_pool_size_validation(self):
        with pytest.raises(ValueError):
            DiversityDrivenEnsembleDetector(n_members=5, pool_size=3)

    def test_score_requires_fit(self, workload):
        _, test, _ = workload
        with pytest.raises(RuntimeError):
            RandomizedEnsembleDetector().score(test)


class TestSpectralResidual:
    def test_detects_spike(self):
        rng = np.random.default_rng(21)
        values = np.sin(2 * np.pi * np.arange(500) / 50)
        values += 0.05 * rng.normal(size=500)
        values[250] += 4.0
        scores = SpectralResidualDetector().score(TimeSeries(values))
        assert abs(int(np.argmax(scores)) - 250) <= 2

    def test_training_free_fit_is_noop(self):
        detector = SpectralResidualDetector()
        assert detector.fit(None) is detector

    def test_multichannel_max_aggregation(self):
        rng = np.random.default_rng(22)
        values = rng.normal(0, 0.1, size=(300, 2))
        values[100, 1] += 5.0
        scores = SpectralResidualDetector().score(TimeSeries(values))
        assert abs(int(np.argmax(scores)) - 100) <= 2

    def test_rejects_incomplete(self):
        with pytest.raises(ValueError):
            SpectralResidualDetector().score(
                TimeSeries([1.0, np.nan, 2.0]))
