"""Differential + chaos harness for streaming/incremental execution.

The streaming engine's core claim (``docs/STREAMING.md``): every
``IncrementalSession.tick`` produces a final state **byte-identical**
to a from-scratch ``DecisionPipeline.run`` on the same accumulated
input state, while re-executing only the dirty downstream cone of the
tick's mutations.  This module pins that claim three ways:

* a **randomized differential harness** — seeded random DAG
  topologies crossed with random per-tick mutations and deletions,
  compared against the from-scratch oracle with the ndarray-aware
  :func:`~repro.core.cache.fingerprint`, across all three executor
  backends (serial / thread / process);
* a **hypothesis property test** driving the same harness over a much
  wider seed space (serial backend, bounded examples);
* **chaos tests** — :class:`~repro.core.faults.FaultInjector` errors,
  timeouts and deadline cancellations mid-stream, asserting the
  transactional tick guarantees (a failed tick publishes nothing, its
  mutations stay pending, the next successful tick reconverges on the
  oracle) and that metrics and spans reconcile with the reports.

Stage functions are module-level (built with ``functools.partial``)
so every case also pickles across the process backend.  All
randomness is seeded — no flaky topology draws.
"""

import functools
import random
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ANY,
    CollectingTracer,
    DecisionPipeline,
    FaultInjector,
    IncrementalSession,
    ProcessExecutor,
    RunDeadlineExceeded,
    Stage,
    StageCache,
    StageFailure,
    Tick,
)
from repro.core.cache import CacheEntry, fingerprint
from repro.core.events import EVENT_KINDS
from repro.observability import MetricsRegistry, SpanTracer
from repro.observability.metrics import use_registry

BACKENDS = ("serial", "thread", "process")
LAYERS = ("data", "governance", "analytics", "decision")


@pytest.fixture(scope="module")
def process_executor():
    """One shared worker pool for the module (pool start-up is the
    expensive part; these tests exercise semantics, not cold start)."""
    executor = ProcessExecutor(max_workers=2)
    yield executor
    executor.close()


def backend_executor(name, process_executor):
    if name == "process":
        return process_executor
    return name


# -- deterministic, picklable stage functions --------------------------------


def df_stage(view, *, reads, writes, drop=None):
    """Differential-harness stage: outputs are a pure function of the
    read values (fingerprint-derived), with a value-dependent deletion
    tombstone so ticks exercise the delete-replay path too."""
    payload = {key: view.get(key, "<absent>") for key in sorted(reads)}
    digest = fingerprint(payload)
    for index, key in enumerate(sorted(writes)):
        seed = int(digest[:8], 16) + index
        if index % 2:
            view[key] = np.arange(5, dtype=np.float64) * ((seed % 97) + 1)
        else:
            view[key] = f"{key}={digest[:12]}"
    if drop is not None and int(digest[8:10], 16) % 2:
        del view[drop]
    return "df"


def inc_total_full(view):
    """From-scratch form of the windowed fold: total over history."""
    history = view["history"]
    view["n_seen"] = len(history)
    view["total"] = float(sum(history))
    return "windowed"


def inc_total_fold(view, tick):
    """Fold form: add only the rows that arrived since the last tick.

    Equivalent to :func:`inc_total_full` as long as ``history`` is
    append-only — the fold discipline the engine documents and this
    harness checks."""
    history = view["history"]
    view["total"] = view["total"] + float(sum(history[view["n_seen"]:]))
    view["n_seen"] = len(history)
    return "folded"


def inc_alarm(view):
    view["alarm"] = bool(view["total"] > 50.0)
    return "alarm"


def chaos_src(view):
    view["x"] = float(view["a"]) * 2.0
    return "src"


def chaos_reader(view):
    view["y"] = view.get("x", 0.0) + 1.0
    return "reader"


def chaos_fallback(view):
    view["x"] = -1.0
    return "held"


def wildcard_stage(view):
    view["w"] = len(view)
    return "wildcard"


# -- differential harness ----------------------------------------------------


def assert_state_equal(actual, oracle, context):
    """Byte-identity via fingerprint, with a per-key diff on failure."""
    if fingerprint(actual) == fingerprint(oracle):
        return
    problems = []
    for key in sorted(set(actual) | set(oracle), key=str):
        if key not in actual:
            problems.append(f"missing {key!r}")
        elif key not in oracle:
            problems.append(f"extra {key!r}")
        elif fingerprint(actual[key]) != fingerprint(oracle[key]):
            problems.append(
                f"differs {key!r}: {actual[key]!r} != {oracle[key]!r}")
    pytest.fail(f"{context}: tick state diverged from the "
                f"from-scratch oracle: {problems}")


def random_value(rng, key):
    roll = rng.random()
    if roll < 0.4:
        return rng.randint(0, 10 ** 6)
    if roll < 0.7:
        return np.asarray([rng.uniform(-5, 5) for _ in range(4)])
    return f"{key}:{rng.randint(0, 999)}"


def build_random_pipeline(rng):
    """A random contract-declared DAG whose layer assignment respects
    the stage index order (so reads always point upstream)."""
    inputs = [f"in{i}" for i in range(rng.randint(2, 5))]
    n_stages = rng.randint(4, 8)
    layer_indices = sorted(rng.choices(range(4), k=n_stages))
    pipeline = DecisionPipeline("differential")
    produced = []
    for j in range(n_stages):
        pool = inputs + produced
        reads = rng.sample(pool, k=min(len(pool), rng.randint(1, 3)))
        writes = [f"s{j}a"]
        if rng.random() < 0.5:
            writes.append(f"s{j}b")
        drop = writes[-1] if rng.random() < 0.4 else None
        produced.extend(writes)
        pipeline.add_stage(
            LAYERS[layer_indices[j]], f"stage{j}",
            functools.partial(df_stage, reads=frozenset(reads),
                              writes=frozenset(writes), drop=drop),
            reads=reads, writes=writes)
    return pipeline, inputs


def random_mutation(rng, inputs):
    changed = {key: random_value(rng, key)
               for key in inputs if rng.random() < 0.45}
    deleted = [key for key in inputs
               if key not in changed and rng.random() < 0.15]
    return changed, deleted


def run_differential(seed, executor, *, n_ticks=4, max_workers=4):
    """One full differential episode; returns total replayed stages."""
    rng = random.Random(seed)
    pipeline, inputs = build_random_pipeline(rng)
    initial = {key: random_value(rng, key)
               for key in inputs if rng.random() < 0.8}
    session = pipeline.stream(initial, executor=executor,
                              max_workers=max_workers)
    replayed = 0
    for index in range(n_ticks):
        changed, deleted = random_mutation(rng, inputs)
        state, report = session.tick(changed=changed, deleted=deleted)
        oracle_state, oracle_report = pipeline.run(
            session.input_state, executor=executor,
            max_workers=max_workers)
        context = f"seed={seed} tick={index}"
        assert_state_equal(state, oracle_state, context)
        assert report.status_map() == oracle_report.status_map(), context
        assert session.state == state
        replayed += report.cache_hits
    assert session.completed == n_ticks
    return replayed


class TestDifferentialHarness:
    """Random topologies x random mutations == from-scratch oracle."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_matches_oracle(self, backend, seed):
        run_differential(seed, backend)

    @pytest.mark.parametrize("seed", range(2))
    def test_matches_oracle_process(self, seed, process_executor):
        run_differential(seed, process_executor, n_ticks=3)

    def test_replays_save_work_across_seeds(self):
        total = sum(run_differential(100 + seed, "serial")
                    for seed in range(4))
        assert total > 0, "no stage was ever replayed from its delta"


class TestPropertyDifferential:
    """Hypothesis sweep over the same harness (serial, bounded)."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_any_topology_matches_oracle(self, seed):
        run_differential(seed, "serial", n_ticks=3)


# -- exact dirty-cone accounting on a known topology -------------------------


def diamond_pipeline():
    add = functools.partial
    pipeline = DecisionPipeline("diamond")
    pipeline.add_data(
        "left", add(df_stage, reads=frozenset(["a"]),
                    writes=frozenset(["l"])),
        reads=("a",), writes=("l",))
    pipeline.add_governance(
        "right", add(df_stage, reads=frozenset(["b"]),
                     writes=frozenset(["r"])),
        reads=("b",), writes=("r",))
    pipeline.add_analytics(
        "merge", add(df_stage, reads=frozenset(["l", "r"]),
                     writes=frozenset(["m"])),
        reads=("l", "r"), writes=("m",))
    pipeline.add_decision(
        "out", add(df_stage, reads=frozenset(["m"]),
                   writes=frozenset(["o"])),
        reads=("m",), writes=("o",))
    return pipeline


class TestDirtyCone:
    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_only_the_cone_reexecutes(self, backend):
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2}, executor=backend)
        _, first = session.tick()
        assert first.cache_hits == 0

        state, report = session.tick(changed={"a": 3})
        hits = {r.name for r in report.records if r.cache_hit}
        assert hits == {"right"}
        oracle, _ = pipeline.run(session.input_state, executor=backend)
        assert_state_equal(state, oracle, "diamond changed=a")

        _, report = session.tick()
        assert report.cache_hits == 4

    def test_no_change_tick_replays_everything(self):
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2})
        first_state, _ = session.tick()
        state, report = session.tick()
        assert report.cache_hits == 4
        assert fingerprint(state) == fingerprint(first_state)

    def test_key_identity_equal_value_still_dirties(self):
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2})
        session.tick()
        _, report = session.tick(changed={"a": 1})
        assert not report.record("left").cache_hit
        assert report.record("right").cache_hit

    def test_deleting_an_input_dirties_its_readers(self):
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2})
        session.tick()
        state, report = session.tick(deleted=["b"])
        assert report.record("left").cache_hit
        assert not report.record("right").cache_hit
        oracle, _ = pipeline.run(session.input_state)
        assert_state_equal(state, oracle, "deleted=b")
        assert "b" not in session.input_state

    def test_declared_but_unwritten_key_stays_dirty(self):
        # "partial" declares writes (x, maybe) but only ever writes x:
        # a clean replay may only launder keys the delta actually
        # wrote, so "maybe" must keep its reader dirty every tick.
        def partial_writer(view):
            view["x"] = view["a"]
            return "partial"

        def maybe_reader(view):
            view["y"] = view.get("maybe", 0)
            return "reader"

        pipeline = DecisionPipeline("unwritten")
        pipeline.add_data("partial", partial_writer,
                          reads=("a",), writes=("x", "maybe"))
        pipeline.add_decision("reader", maybe_reader,
                              reads=("maybe",), writes=("y",))
        session = pipeline.stream({"a": 1})
        session.tick()
        _, report = session.tick(changed={"a": 2})
        assert not report.record("reader").cache_hit

    def test_wildcard_stage_is_dirty_whenever_anything_changed(self):
        pipeline = DecisionPipeline("wildcard")
        pipeline.add_data("legacy", wildcard_stage)  # noqa: RC001
        session = pipeline.stream({"a": 1})
        session.tick()
        _, report = session.tick(changed={"a": 2})
        assert not report.record("legacy").cache_hit
        _, report = session.tick()
        assert report.record("legacy").cache_hit

    def test_full_tick_recomputes_every_stage(self):
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2})
        session.tick()
        state, report = session.tick(full=True)
        assert report.cache_hits == 0
        oracle, _ = pipeline.run(session.input_state)
        assert_state_equal(state, oracle, "full=True")


# -- incremental folds -------------------------------------------------------


def fold_pipeline():
    pipeline = DecisionPipeline("windowed")
    pipeline.add_analytics(
        "window", inc_total_full, reads=("history",),
        writes=("total", "n_seen"), incremental=inc_total_fold)
    pipeline.add_decision(
        "alarm", inc_alarm, reads=("total",), writes=("alarm",))
    return pipeline


class TestIncrementalFolds:
    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_fold_equals_recompute_on_appends(self, backend):
        pipeline = fold_pipeline()
        registry = MetricsRegistry()
        history = [1.0, 2.0]
        session = pipeline.stream({"history": list(history)},
                                  executor=backend, metrics=registry)
        session.tick()
        for chunk in ([3.0, 4.0], [10.0, 20.0], [30.0]):
            history.extend(chunk)
            state, _ = session.tick(changed={"history": list(history)})
            oracle, _ = pipeline.run(session.input_state,
                                     executor=backend)
            assert_state_equal(state, oracle, f"history={history}")
        assert state["alarm"] is True
        folds = registry.counter("engine.tick_stages_total").value(
            disposition="incremental")
        assert folds == 3.0

    def test_fold_runs_under_the_process_backend(self, process_executor):
        pipeline = fold_pipeline()
        session = pipeline.stream({"history": [1.0, 2.0]},
                                  executor=process_executor)
        session.tick()
        state, _ = session.tick(changed={"history": [1.0, 2.0, 3.0]})
        assert state["total"] == 6.0
        assert state["n_seen"] == 3

    def test_full_tick_bypasses_the_fold(self):
        pipeline = fold_pipeline()
        registry = MetricsRegistry()
        session = pipeline.stream({"history": [1.0]}, metrics=registry)
        session.tick()
        state, report = session.tick(changed={"history": [5.0]},
                                     full=True)
        assert state["total"] == 5.0
        assert report.cache_hits == 0
        folds = registry.counter("engine.tick_stages_total").value(
            disposition="incremental")
        assert folds == 0.0

    def test_first_tick_always_recomputes(self):
        pipeline = fold_pipeline()
        session = pipeline.stream({"history": [4.0]})
        state, _ = session.tick()
        assert state["total"] == 4.0

    def test_incremental_requires_a_callable(self):
        with pytest.raises(TypeError, match="incremental"):
            Stage("data", "s", lambda v: None, reads=("a",),
                  writes=("b",), incremental=42)

    def test_describe_contract_reports_the_fold(self):
        stage = Stage("data", "s", inc_total_full, reads=("history",),
                      writes=("total", "n_seen"),
                      incremental=inc_total_fold)
        assert stage.describe_contract()["incremental"] is True
        plain = Stage("data", "p", inc_total_full, reads=("history",),
                      writes=("total", "n_seen"))
        assert plain.describe_contract()["incremental"] is False


# -- chaos: faults, timeouts, deadlines mid-stream ---------------------------


def chaos_pipeline(*, retries=0, on_error="fail", fallback=None):
    pipeline = DecisionPipeline("chaos")
    pipeline.add_data("src", chaos_src, reads=("a",), writes=("x",),
                      retries=retries, backoff=0.0, on_error=on_error,
                      fallback=fallback)
    pipeline.add_decision("reader", chaos_reader, reads=("x",),
                          writes=("y",))
    return pipeline


class TestChaos:
    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_retry_absorbs_an_injected_fault(self, backend):
        faults = FaultInjector()
        pipeline = chaos_pipeline(retries=2)
        session = pipeline.stream({"a": 1.0}, tracer=faults,
                                  executor=backend)
        session.tick()
        faults.fail("src", times=1)
        state, report = session.tick(changed={"a": 2.0})
        assert report.record("src").retries >= 1
        oracle, _ = pipeline.run(session.input_state, executor=backend)
        assert_state_equal(state, oracle, "retry recovery")
        assert faults.pending() == 0

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_failed_tick_publishes_nothing_and_stays_pending(
            self, backend):
        faults = FaultInjector()
        pipeline = chaos_pipeline()
        session = pipeline.stream({"a": 1.0}, tracer=faults,
                                  executor=backend)
        committed, _ = session.tick()

        faults.fail("src", times=1)
        with pytest.raises(StageFailure):
            session.tick(changed={"a": 5.0})
        # Transactional: the failed tick committed nothing...
        assert session.state == committed
        assert session.completed == 1
        # ...but its input mutation stuck, pending recomputation.
        assert session.input_state["a"] == 5.0

        # A no-change tick must recompute the whole pending cone.
        state, report = session.tick()
        assert not report.record("src").cache_hit
        assert not report.record("reader").cache_hit
        oracle, _ = pipeline.run(session.input_state, executor=backend)
        assert_state_equal(state, oracle, "post-failure recovery")
        assert state["x"] == 10.0

    def test_deadline_cancellation_mid_stream_recovers(self):
        faults = FaultInjector()
        pipeline = chaos_pipeline()
        session = pipeline.stream({"a": 1.0}, tracer=faults)
        session.tick()
        faults.delay("src", 0.3)
        with pytest.raises(RunDeadlineExceeded):
            session.tick(changed={"a": 7.0}, deadline=0.05)
        assert session.completed == 1
        state, _ = session.tick()
        oracle, _ = pipeline.run(session.input_state)
        assert_state_equal(state, oracle, "post-deadline recovery")
        assert state["x"] == 14.0

    def test_injected_timeout_with_skip_policy_heals_next_tick(self):
        faults = FaultInjector().timeout("src")
        pipeline = chaos_pipeline(on_error="skip")
        pipeline_oracle = chaos_pipeline(on_error="skip")
        session = pipeline.stream({"a": 1.0}, tracer=faults)
        state, report = session.tick()
        # The tick itself is ok, the stage skipped: no writes land.
        assert report.record("src").status != "ok"
        assert "x" not in state
        # A skipped stage has no delta to replay — it re-executes on
        # the next tick and the session converges on the oracle.
        state, report = session.tick()
        assert not report.record("src").cache_hit
        oracle, _ = pipeline_oracle.run(session.input_state)
        assert_state_equal(state, oracle, "post-skip convergence")
        assert state["x"] == 2.0

    def test_fallback_result_is_not_replayed(self):
        faults = FaultInjector().fail("src", times=1)
        pipeline = chaos_pipeline(on_error="fallback",
                                  fallback=chaos_fallback)
        session = pipeline.stream({"a": 1.0}, tracer=faults)
        state, report = session.tick()
        assert report.record("src").status == "fallback"
        assert state["x"] == -1.0
        # Fallback output is deliberately never cached: the primary
        # runs again next tick and the degraded value washes out.
        state, report = session.tick()
        assert not report.record("src").cache_hit
        assert state["x"] == 2.0

    def test_fault_mid_stream_on_the_process_backend(
            self, process_executor):
        faults = FaultInjector().fail("src", times=1)
        pipeline = chaos_pipeline(retries=1)
        session = pipeline.stream({"a": 3.0}, tracer=faults,
                                  executor=process_executor)
        state, report = session.tick()
        assert report.record("src").retries == 1
        assert state["y"] == 7.0


# -- observability reconciliation --------------------------------------------


class TestStreamingObservability:
    def test_tick_metrics_reconcile_with_reports(self):
        registry = MetricsRegistry()
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2}, metrics=registry)
        reports = []
        for changed in ({}, {"a": 2}, {}):
            _, report = session.tick(changed=changed)
            reports.append(report)
        ticks = registry.counter("engine.ticks_total")
        assert ticks.value(status="ok") == 3.0
        assert ticks.total() == 3.0
        stages = registry.counter("engine.tick_stages_total")
        assert stages.value(disposition="replayed") == sum(
            report.cache_hits for report in reports)
        assert stages.value(disposition="executed") == sum(
            len(report.records) - report.cache_hits
            for report in reports)
        durations = registry.get("engine.tick_duration_seconds")
        assert durations is not None

    def test_failed_tick_counts_by_status(self):
        registry = MetricsRegistry()
        faults = FaultInjector()
        pipeline = chaos_pipeline()
        session = pipeline.stream({"a": 1.0}, tracer=faults,
                                  metrics=registry)
        session.tick()
        faults.fail("src", times=1)
        with pytest.raises(StageFailure):
            session.tick(changed={"a": 2.0})
        session.tick()
        ticks = registry.counter("engine.ticks_total")
        assert ticks.value(status="ok") == 2.0
        assert ticks.value(status="failed") == 1.0

    def test_tick_spans_parent_the_run_spans(self):
        spans = SpanTracer()
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2}, tracer=spans)
        session.tick()
        session.tick(changed={"a": 2})
        tick_spans = spans.spans(kind="tick")
        run_spans = spans.spans(kind="run")
        assert [span.name for span in tick_spans] == ["tick-0",
                                                      "tick-1"]
        assert all(span.status == "ok" for span in tick_spans)
        tick_ids = {span.span_id for span in tick_spans}
        assert len(run_spans) == 2
        assert all(span.parent_id in tick_ids for span in run_spans)

    def test_failed_tick_span_carries_the_status(self):
        spans = SpanTracer()
        faults = FaultInjector().fail("src", times=1)
        faults.forward_to(spans)
        pipeline = chaos_pipeline()
        session = pipeline.stream({"a": 1.0}, tracer=faults)
        with pytest.raises(StageFailure):
            session.tick()
        (tick_span,) = spans.spans(kind="tick")
        assert tick_span.status == "failed"

    def test_tick_events_bracket_run_events(self):
        tracer = CollectingTracer()
        pipeline = diamond_pipeline()
        session = pipeline.stream({"a": 1, "b": 2}, tracer=tracer)
        session.tick()
        kinds = [event.kind for event in tracer.events]
        assert kinds[0] == "tick_start"
        assert kinds[-1] == "tick_end"
        assert kinds.index("run_start") > kinds.index("tick_start")
        assert kinds.index("run_end") < len(kinds) - 1
        assert all(kind in EVENT_KINDS for kind in kinds)
        start = tracer.events[0]
        assert start.data["tick"] == 0
        # The first tick is full *in effect* (nothing to replay yet)
        # without the explicit flag being set.
        assert start.data["full"] is False
        assert start.data["dirty"] == 4
        end = tracer.events[-1]
        assert end.data["status"] == "ok"
        assert end.data["saved"] == 0


# -- session mechanics and validation ----------------------------------------


class TestSessionMechanics:
    def test_stream_requires_at_least_one_stage(self):
        with pytest.raises(RuntimeError, match="no stages"):
            DecisionPipeline("empty").stream()

    def test_state_is_none_before_the_first_tick(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        assert session.state is None
        assert session.completed == 0
        assert session.last_report is None
        assert "ticks=0/0" in repr(session)

    def test_state_properties_return_copies(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        session.tick()
        session.state["a"] = 999
        session.input_state["a"] = 999
        assert session.state["a"] == 1
        assert session.input_state["a"] == 1

    def test_changed_and_deleted_must_be_disjoint(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        with pytest.raises(ValueError, match="both changed and"):
            session.tick(changed={"a": 2}, deleted=["a"])

    def test_deadline_must_be_positive(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        with pytest.raises(ValueError, match="deadline"):
            session.tick(deadline=0)

    def test_explicit_run_id_threads_through(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        _, report = session.tick(run_id="tick-run-7")
        assert report.run_id == "tick-run-7"

    def test_concurrent_ticks_serialize(self):
        session = diamond_pipeline().stream({"a": 1, "b": 2})
        errors = []

        def spin(worker):
            try:
                for index in range(5):
                    session.tick(changed={"a": (worker, index)})
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=spin, args=(n,))
                   for n in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert session.completed == 15

    def test_tick_namedtuple_shape(self):
        tick = Tick(3, frozenset({"a"}), frozenset({"b"}))
        assert tick.number == 3
        assert tick.changed == frozenset({"a"})
        assert tick.deleted == frozenset({"b"})

    def test_exports(self):
        import repro

        assert repro.IncrementalSession is IncrementalSession


class TestCachePlumbing:
    def test_adopt_installs_by_reference(self):
        cache = StageCache()
        entry = CacheEntry("ok", {}, {"k": 1})
        cache.adopt("key", entry)
        assert cache.entry("key") is entry
        assert cache.entry("missing") is None

    def test_adopt_rejects_non_entries(self):
        with pytest.raises(TypeError, match="CacheEntry"):
            StageCache().adopt("key", {"delta": {}})

    def test_scheduler_rejects_mismatched_cache_keys(self):
        from repro.core import RunReport, dag
        from repro.core.scheduler import DagScheduler

        stage = Stage("data", "only", wildcard_stage)
        deps = dag.resolve_dependencies([stage])
        with pytest.raises(ValueError, match="cache_keys"):
            DagScheduler().execute([stage], deps, {},
                                   RunReport("mismatch"),
                                   cache=StageCache(),
                                   cache_keys=["a", "b"])


# -- the online governance / analytics companions ----------------------------


class TestStreamingImputer:
    def _gappy(self, rng, rows=40, cols=3):
        values = rng.normal(size=(rows, cols))
        mask = rng.random((rows, cols)) < 0.6
        mask[0, :] = True  # every channel observed up front
        raw = values.copy()
        raw[~mask] = np.nan
        return raw

    def test_chunked_locf_matches_batch(self):
        from repro.datatypes import TimeSeries
        from repro.governance.imputation import (
            StreamingImputer,
            impute_locf,
        )

        raw = self._gappy(np.random.default_rng(7))
        batch = impute_locf(TimeSeries(raw)).values
        imputer = StreamingImputer()
        streamed = np.vstack([imputer.push(raw[start:start + 7])
                              for start in range(0, len(raw), 7)])
        np.testing.assert_array_equal(streamed, batch)
        assert imputer.rows_seen == len(raw)

    def test_accepts_timeseries_chunks(self):
        from repro.datatypes import TimeSeries
        from repro.governance.imputation import StreamingImputer

        imputer = StreamingImputer()
        first = imputer.push(TimeSeries([1.0, np.nan, 3.0]))
        np.testing.assert_array_equal(first.values[:, 0],
                                      [1.0, 1.0, 3.0])
        second = imputer.push(TimeSeries([np.nan, 5.0]))
        np.testing.assert_array_equal(second.values[:, 0], [3.0, 5.0])

    def test_unobserved_leading_rows_fill_zero(self):
        from repro.governance.imputation import StreamingImputer

        filled = StreamingImputer().push([np.nan, np.nan, 2.0, np.nan])
        np.testing.assert_array_equal(filled, [0.0, 0.0, 2.0, 2.0])

    def test_ewma_smooths_across_chunks(self):
        from repro.governance.imputation import StreamingImputer

        imputer = StreamingImputer("ewma", alpha=0.5)
        imputer.push([4.0])
        filled = imputer.push([8.0, np.nan])
        # carry = 4 + 0.5 * (8 - 4) = 6 fills the gap.
        np.testing.assert_array_equal(filled, [8.0, 6.0])

    def test_channel_count_is_pinned(self):
        from repro.governance.imputation import StreamingImputer

        imputer = StreamingImputer()
        imputer.push(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="channels"):
            imputer.push(np.zeros((2, 2)))

    def test_reset_forgets_the_carry(self):
        from repro.governance.imputation import StreamingImputer

        imputer = StreamingImputer()
        imputer.push([7.0])
        assert imputer.carry is not None
        imputer.reset()
        assert imputer.carry is None
        np.testing.assert_array_equal(imputer.push([np.nan]), [0.0])

    def test_validation(self):
        from repro.governance.imputation import StreamingImputer

        with pytest.raises(ValueError, match="method"):
            StreamingImputer("magic")
        with pytest.raises(ValueError, match="alpha"):
            StreamingImputer("ewma", alpha=0.0)


class TestDriftTriggeredRefit:
    SHIFTS = [0.0] * 30 + [5.0] * 30 + [10.0] * 30

    def test_detector_alarm_invokes_the_refit(self):
        from repro.analytics.robustness import DriftTriggeredRefit

        calls = []
        gate = DriftTriggeredRefit(refit=lambda: calls.append(1))
        triggers = gate.observe_many(self.SHIFTS)
        assert triggers
        assert len(calls) == gate.refits == len(triggers)
        assert gate.observed == len(self.SHIFTS)

    def test_cooldown_suppresses_rapid_refits(self):
        from repro.analytics.robustness import DriftTriggeredRefit

        gate = DriftTriggeredRefit(cooldown=1000)
        triggers = gate.observe_many(self.SHIFTS)
        assert len(triggers) == 1
        assert gate.refits == 1
        assert gate.suppressed >= 1

    def test_refits_publish_a_counter(self):
        from repro.analytics.robustness import DriftTriggeredRefit

        registry = MetricsRegistry()
        with use_registry(registry):
            gate = DriftTriggeredRefit()
            gate.observe_many(self.SHIFTS)
        counter = registry.counter("analytics.drift_refits_total")
        assert counter.total() == gate.refits > 0

    def test_no_alarm_no_refit(self):
        from repro.analytics.robustness import DriftTriggeredRefit

        gate = DriftTriggeredRefit()
        assert gate.observe_many([0.0] * 50) == []
        assert gate.refits == 0
        assert "refits=0" in repr(gate)

    def test_validation(self):
        from repro.analytics.robustness import DriftTriggeredRefit

        with pytest.raises(TypeError, match="update"):
            DriftTriggeredRefit(detector=object())
        with pytest.raises(TypeError, match="refit"):
            DriftTriggeredRefit(refit=42)
        with pytest.raises(ValueError, match="cooldown"):
            DriftTriggeredRefit(cooldown=-1)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
