"""Tests for repro.governance.uncertainty.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._validation import trapezoid
from repro.governance.uncertainty import GaussianMixture, Histogram


class TestHistogramConstruction:
    def test_from_samples_moments(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 5000)
        histogram = Histogram.from_samples(samples, n_bins=50)
        assert histogram.mean() == pytest.approx(10.0, abs=0.15)
        assert histogram.std() == pytest.approx(2.0, abs=0.15)

    def test_from_samples_bounds(self):
        histogram = Histogram.from_samples([1.0, 2.0, 3.0], n_bins=4,
                                           bounds=(0.0, 4.0))
        assert histogram.min() >= 0.0
        assert histogram.max() <= 4.0

    def test_from_samples_identical_values(self):
        histogram = Histogram.from_samples([5.0, 5.0, 5.0])
        assert histogram.mean() == pytest.approx(5.0, abs=1e-6)
        assert histogram.std() == pytest.approx(0.0, abs=1e-6)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([1.0, 2.0], bounds=(3.0, 1.0))

    def test_out_of_bounds_samples(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([10.0], bounds=(0.0, 1.0))

    def test_point_mass(self):
        point = Histogram.point_mass(3.0)
        assert point.mean() == pytest.approx(3.0)
        assert point.std() == pytest.approx(0.0, abs=1e-6)

    def test_negative_probabilities_rejected(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, [-0.5, 1.5])

    def test_probabilities_normalized(self):
        histogram = Histogram(0.0, 1.0, [2.0, 2.0])
        assert histogram.probabilities.sum() == pytest.approx(1.0)


class TestHistogramQueries:
    @pytest.fixture
    def uniform(self):
        return Histogram(0.0, 1.0, np.ones(10) / 10)

    def test_cdf_monotone(self, uniform):
        grid = np.linspace(-1, 10, 50)
        cdf = uniform.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] == 0.0
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_scalar(self, uniform):
        assert uniform.cdf(4.5) == pytest.approx(0.5)

    def test_sf_complement(self, uniform):
        assert uniform.sf(4.5) == pytest.approx(1 - uniform.cdf(4.5))

    def test_quantile_inverts_cdf(self, uniform):
        for q in (0.1, 0.5, 0.9):
            value = uniform.quantile(q)
            assert uniform.cdf(value) >= q - 1e-9

    def test_quantile_bounds(self, uniform):
        assert uniform.quantile(0.0) == uniform.support[0]
        assert uniform.quantile(1.0) == uniform.support[-1]

    def test_quantile_invalid(self, uniform):
        with pytest.raises(ValueError):
            uniform.quantile(1.5)

    def test_expectation_of_identity_is_mean(self, uniform):
        assert uniform.expectation(lambda x: x) == pytest.approx(
            uniform.mean())

    def test_sampling_matches_distribution(self, uniform):
        samples = uniform.sample(20000, rng=np.random.default_rng(1))
        assert samples.mean() == pytest.approx(uniform.mean(), abs=0.1)

    def test_min_max_ignore_zero_mass(self):
        histogram = Histogram(0.0, 1.0, [0.0, 1.0, 0.0])
        assert histogram.min() == 1.0
        assert histogram.max() == 1.0


class TestHistogramAlgebra:
    def test_convolution_moments_add(self):
        rng = np.random.default_rng(2)
        a = Histogram.from_samples(rng.normal(3, 1, 4000), n_bins=40)
        b = Histogram.from_samples(rng.normal(5, 2, 4000), n_bins=40)
        total = a.convolve(b)
        assert total.mean() == pytest.approx(a.mean() + b.mean(), rel=0.02)
        assert total.variance() == pytest.approx(
            a.variance() + b.variance(), rel=0.1)

    def test_convolve_point_mass_shifts(self):
        a = Histogram(0.0, 1.0, [0.5, 0.5])
        shifted = a.convolve(Histogram.point_mass(10.0))
        assert shifted.mean() == pytest.approx(a.mean() + 10.0, abs=0.01)

    def test_convolve_type_check(self):
        with pytest.raises(TypeError):
            Histogram(0.0, 1.0, [1.0]).convolve("no")

    def test_shift(self):
        a = Histogram(0.0, 1.0, [0.25, 0.75])
        assert a.shift(5.0).mean() == pytest.approx(a.mean() + 5.0)

    def test_rebin_preserves_mass_and_mean(self):
        rng = np.random.default_rng(3)
        a = Histogram.from_samples(rng.gamma(3, 2, 3000), n_bins=60)
        coarse = a.rebinned(a.width * 3)
        assert coarse.probabilities.sum() == pytest.approx(1.0)
        assert coarse.mean() == pytest.approx(a.mean(), abs=2 * a.width)

    def test_mixture_mean(self):
        a = Histogram.point_mass(0.0, width=0.5)
        b = Histogram.point_mass(10.0, width=0.5)
        mixed = Histogram.mixture([a, b], [0.25, 0.75])
        assert mixed.mean() == pytest.approx(7.5, abs=0.3)

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            Histogram.mixture([Histogram.point_mass(0.0)], [0.5, 0.5])
        with pytest.raises(ValueError):
            Histogram.mixture([], [])

    def test_truncated_support(self):
        uniform = Histogram(0.0, 1.0, np.ones(10) / 10)
        clipped = uniform.truncated(low=3.0, high=6.0)
        assert clipped.min() >= 3.0
        assert clipped.max() <= 6.0
        assert clipped.probabilities.sum() == pytest.approx(1.0)

    def test_truncated_empty(self):
        uniform = Histogram(0.0, 1.0, np.ones(10) / 10)
        with pytest.raises(ValueError):
            uniform.truncated(low=100.0)


class TestGaussianMixture:
    def test_fit_recovers_two_modes(self):
        rng = np.random.default_rng(4)
        samples = np.concatenate([
            rng.normal(0.0, 1.0, 1000), rng.normal(10.0, 1.0, 1000)
        ])
        mixture = GaussianMixture.fit(samples, 2, rng=rng)
        means = np.sort(mixture.means)
        assert means[0] == pytest.approx(0.0, abs=0.5)
        assert means[1] == pytest.approx(10.0, abs=0.5)
        assert mixture.weights == pytest.approx([0.5, 0.5], abs=0.08)

    def test_single_component_matches_moments(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(3.0, 2.0, 2000)
        mixture = GaussianMixture.fit(samples, 1, rng=rng)
        assert mixture.mean() == pytest.approx(3.0, abs=0.2)
        assert mixture.std() == pytest.approx(2.0, abs=0.2)

    def test_cdf_and_quantile_consistent(self):
        mixture = GaussianMixture([0.0, 4.0], [1.0, 1.0], [0.5, 0.5])
        median = mixture.quantile(0.5)
        assert mixture.cdf(median) == pytest.approx(0.5, abs=1e-6)
        assert median == pytest.approx(2.0, abs=1e-4)

    def test_pdf_integrates_to_one(self):
        mixture = GaussianMixture([0.0, 3.0], [0.5, 1.5], [0.3, 0.7])
        grid = np.linspace(-10, 15, 4000)
        integral = trapezoid(mixture.pdf(grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_sampling_moments(self):
        mixture = GaussianMixture([0.0, 8.0], [1.0, 2.0], [0.6, 0.4])
        samples = mixture.sample(30000, rng=np.random.default_rng(6))
        assert samples.mean() == pytest.approx(mixture.mean(), abs=0.1)
        assert samples.std() == pytest.approx(mixture.std(), abs=0.1)

    def test_to_histogram_preserves_moments(self):
        mixture = GaussianMixture([2.0], [1.0], [1.0])
        histogram = mixture.to_histogram(n_bins=120)
        assert histogram.mean() == pytest.approx(2.0, abs=0.05)
        assert histogram.std() == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture([0.0], [0.0], [1.0])
        with pytest.raises(ValueError):
            GaussianMixture([0.0, 1.0], [1.0], [1.0])
        with pytest.raises(ValueError):
            GaussianMixture.fit([1.0], 2)


@settings(deadline=None, max_examples=25)
@given(
    mean_a=st.floats(-20, 20), mean_b=st.floats(-20, 20),
    seed=st.integers(0, 100),
)
def test_convolution_mean_additivity_property(mean_a, mean_b, seed):
    """E[A + B] = E[A] + E[B] holds for histogram convolution."""
    rng = np.random.default_rng(seed)
    a = Histogram.from_samples(rng.normal(mean_a, 1.0, 400), n_bins=25)
    b = Histogram.from_samples(rng.normal(mean_b, 2.0, 400), n_bins=25)
    total = a.convolve(b)
    tolerance = 2 * max(a.width, b.width)
    assert abs(total.mean() - (a.mean() + b.mean())) < tolerance


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 1000))
def test_cdf_is_valid_distribution_property(seed):
    """Any sampled histogram has a monotone CDF ending at 1."""
    rng = np.random.default_rng(seed)
    histogram = Histogram.from_samples(rng.exponential(2.0, 200), n_bins=15)
    grid = np.linspace(histogram.min() - 1, histogram.max() + 1, 64)
    cdf = histogram.cdf(grid)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[-1] == pytest.approx(1.0)
