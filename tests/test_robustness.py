"""Tests for drift detection, continual learning, adaptation, pathways."""

import numpy as np
import pytest

from repro import TimeSeries
from repro.datasets import seasonal_series
from repro.analytics.forecasting import ARForecaster
from repro.analytics.metrics import mae
from repro.analytics.robustness import (
    DomainAdaptedRegressor,
    KsDriftDetector,
    MultiScalePathwaysForecaster,
    PageHinkleyDetector,
    ReplayContinualForecaster,
    density_ratio_weights,
    evaluate_forgetting,
    weighted_ridge,
)


class TestDrift:
    def test_ks_flags_shift_only(self):
        rng = np.random.default_rng(0)
        detector = KsDriftDetector(rng.normal(0, 1, 400))
        same, p_same = detector.check(rng.normal(0, 1, 300))
        shifted, p_shifted = detector.check(rng.normal(2, 1, 300))
        assert not same and shifted
        assert p_shifted < p_same

    def test_ks_validation(self):
        with pytest.raises(ValueError):
            KsDriftDetector([1.0, 2.0])
        detector = KsDriftDetector(np.zeros(10) + np.arange(10))
        with pytest.raises(ValueError):
            detector.check([1.0])

    def test_page_hinkley_detects_mean_shift(self):
        rng = np.random.default_rng(1)
        stream = np.concatenate([rng.normal(0, 0.3, 300),
                                 rng.normal(4, 0.3, 100)])
        alarms = PageHinkleyDetector(delta=0.1, threshold=8.0).scan(stream)
        assert alarms
        assert 300 <= alarms[0] <= 320

    def test_page_hinkley_quiet_on_stationary(self):
        rng = np.random.default_rng(2)
        alarms = PageHinkleyDetector(delta=0.1, threshold=8.0).scan(
            rng.normal(0, 0.3, 500))
        assert alarms == []

    def test_page_hinkley_resets_after_alarm(self):
        rng = np.random.default_rng(3)
        stream = np.concatenate([
            rng.normal(0, 0.3, 200), rng.normal(4, 0.3, 200),
            rng.normal(8, 0.3, 200),
        ])
        alarms = PageHinkleyDetector(delta=0.1, threshold=8.0).scan(stream)
        assert len(alarms) >= 2


def make_regime(level, seed, length=400):
    base = seasonal_series(length, amplitude=2.0,
                           rng=np.random.default_rng(seed))
    return TimeSeries(base.values + level)


class TestContinual:
    @pytest.fixture(scope="class")
    def regimes(self):
        levels = [0.0, 6.0, -4.0, 10.0]
        return [(make_regime(level, 10 + i), make_regime(level, 20 + i))
                for i, level in enumerate(levels)]

    @staticmethod
    def factory(strategy):
        return ReplayContinualForecaster(
            lambda: ARForecaster(n_lags=12, seasonal_period=96),
            strategy=strategy, rng=np.random.default_rng(0))

    def test_replay_forgets_less_than_finetune(self, regimes):
        """The claim of [37]: replay fights catastrophic forgetting."""
        finetune = evaluate_forgetting(
            lambda: self.factory("finetune"), regimes)
        replay = evaluate_forgetting(
            lambda: self.factory("replay"), regimes)

        def forgetting(scores):
            return float(np.nanmean(
                scores[-1, :-1] - np.diag(scores)[:-1]))

        assert forgetting(replay) < forgetting(finetune)

    def test_retrain_is_upper_bound(self, regimes):
        replay = evaluate_forgetting(lambda: self.factory("replay"),
                                     regimes)
        retrain = evaluate_forgetting(lambda: self.factory("retrain"),
                                      regimes)
        assert np.nanmean(retrain[-1]) <= np.nanmean(replay[-1]) + 0.1

    def test_score_matrix_shape(self, regimes):
        scores = evaluate_forgetting(lambda: self.factory("replay"),
                                     regimes[:2])
        assert scores.shape == (2, 2)
        assert np.isnan(scores[0, 1])
        assert np.isfinite(scores[1, 0])

    def test_buffer_bounded(self, regimes):
        learner = self.factory("replay")
        for train, _ in regimes * 3:
            learner.observe(train)
        assert len(learner._buffer) <= learner.buffer_size

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            ReplayContinualForecaster(lambda: ARForecaster(),
                                      strategy="magic")

    def test_predict_before_observe(self):
        learner = self.factory("replay")
        with pytest.raises(RuntimeError):
            learner.predict(3)


class TestAdaptation:
    def test_density_ratio_upweights_targetlike(self):
        rng = np.random.default_rng(4)
        source = np.vstack([rng.normal(0, 1, size=(300, 2)),
                            rng.normal(4, 1, size=(300, 2))])
        target = rng.normal(4, 1, size=(100, 2))
        weights = density_ratio_weights(source, target)
        assert weights[300:].mean() > 2 * weights[:300].mean()

    def test_weighted_ridge_respects_weights(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 1))
        y_a = 2.0 * X[:, 0]
        y_b = -2.0 * X[:, 0]
        X2 = np.vstack([X, X])
        y = np.concatenate([y_a, y_b])
        weights = np.concatenate([np.ones(200), np.zeros(200)])
        coefficients, _ = weighted_ridge(X2, y, weights, alpha=1e-6)
        assert coefficients[0, 0] == pytest.approx(2.0, abs=0.05)

    def test_weighted_ridge_validation(self):
        with pytest.raises(ValueError):
            weighted_ridge(np.zeros((5, 2)), np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            weighted_ridge(np.zeros((5, 2)), np.zeros(5), -np.ones(5))

    def test_adaptation_helps_under_covariate_shift(self):
        rng = np.random.default_rng(6)
        # Source mixes two dynamics; target only exhibits the second.
        n = 800
        regime_a = np.sin(np.arange(n // 2) * 0.8) * 3.0
        regime_b = np.sin(np.arange(n // 2) * 0.2) * 1.0
        source = np.concatenate([regime_a, regime_b])
        source += rng.normal(0, 0.1, n)
        target = np.sin((np.arange(60) + 7) * 0.2) * 1.0 \
            + rng.normal(0, 0.1, 60)
        test = np.sin((np.arange(300) + 31) * 0.2) * 1.0 \
            + rng.normal(0, 0.1, 300)
        adapted = DomainAdaptedRegressor(n_lags=6).fit(source, target,
                                                       adapt=True)
        pooled = DomainAdaptedRegressor(n_lags=6).fit(source, target,
                                                      adapt=False)
        pred_a, truth_a = adapted.predict_one_step(test)
        pred_p, truth_p = pooled.predict_one_step(test)
        assert mae(truth_a, pred_a) <= mae(truth_p, pred_p) * 1.05

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            DomainAdaptedRegressor().predict_one_step(np.zeros(30))


class TestMultiScale:
    @pytest.fixture(scope="class")
    def mixed(self):
        rng = np.random.default_rng(7)
        t = np.arange(1600)
        values = (np.sin(2 * np.pi * t / 168) * 2.0
                  + np.sin(2 * np.pi * t / 24) * 1.0
                  + t * 0.003 + rng.normal(0, 0.25, len(t)))
        return TimeSeries(values)

    def test_beats_single_scale_on_mixed_periods(self, mixed):
        """E14's claim: multi-scale pathways outperform a single-scale
        model when the signal mixes resolutions."""
        train, test = mixed.split(0.9)
        pathways = MultiScalePathwaysForecaster(
            scales=(6, 36, 168)).fit(train)
        single = ARForecaster(n_lags=48).fit(train)
        assert mae(test.values, pathways.predict(len(test))) < \
            mae(test.values, single.predict(len(test)))

    def test_components_sum_to_series(self, mixed):
        model = MultiScalePathwaysForecaster(scales=(6, 36, 168))
        components = model._decompose(mixed.values)
        assert np.allclose(sum(components), mixed.values)

    def test_adaptive_flags_exist(self, mixed):
        train, _ = mixed.split(0.9)
        model = MultiScalePathwaysForecaster(scales=(6, 36)).fit(train)
        assert len(model.pathway_uses_model_) == 3

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            MultiScalePathwaysForecaster(scales=(1, 4))
        with pytest.raises(ValueError):
            MultiScalePathwaysForecaster(scales=(24, 6))
        with pytest.raises(ValueError):
            MultiScalePathwaysForecaster(scales=())

    def test_evaluate_pathways_returns_per_scale(self, mixed):
        model = MultiScalePathwaysForecaster(scales=(6, 36)).fit(
            mixed.slice(0, 1200))
        diagnostics = model.evaluate_pathways(mixed.slice(0, 1200), 50)
        assert len(diagnostics) == 3
