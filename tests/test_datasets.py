"""Tests for the synthetic workload generators in repro.datasets."""

import numpy as np
import pytest

from repro import RoadNetwork
from repro.datasets import (
    TrafficSimulator,
    TrajectoryGenerator,
    cloud_demand_dataset,
    diurnal_profile,
    inject_anomalies,
    seasonal_series,
    simulate_trip,
    sparse_buoy_observations,
    traffic_speed_dataset,
    wave_field_dataset,
)


class TestDiurnalProfile:
    def test_range(self):
        minutes = np.arange(0, 24 * 60)
        factor = diurnal_profile(minutes)
        assert np.all(factor > 0) and np.all(factor <= 1)

    def test_rush_hour_slower_than_night(self):
        assert diurnal_profile(8 * 60) < diurnal_profile(3 * 60)

    def test_wraps_past_midnight(self):
        assert diurnal_profile(10) == pytest.approx(
            float(diurnal_profile(24 * 60 + 10))
        )


class TestTrafficSpeedDataset:
    def test_shapes_and_reproducibility(self):
        a = traffic_speed_dataset(n_sensors=8, n_days=2,
                                  rng=np.random.default_rng(7))
        b = traffic_speed_dataset(n_sensors=8, n_days=2,
                                  rng=np.random.default_rng(7))
        assert len(a) == 2 * 96  # 15-minute default interval
        assert a.n_sensors == 8
        assert np.allclose(a.values, b.values)

    def test_speeds_positive(self):
        cts = traffic_speed_dataset(n_sensors=6, n_days=1,
                                    rng=np.random.default_rng(0))
        assert np.all(cts.values >= 3.0)

    def test_rush_hour_dip_visible(self):
        cts = traffic_speed_dataset(n_sensors=10, n_days=5, n_events=0,
                                    rng=np.random.default_rng(1))
        values = cts.values
        steps_per_day = 96
        minutes = (np.arange(len(cts)) * 15) % (24 * 60)
        rush = (np.abs(minutes - 8 * 60) < 45)
        night = (minutes < 4 * 60)
        weekday = ((np.arange(len(cts)) * 15) // (24 * 60)) % 7 < 5
        assert values[rush & weekday].mean() < values[night & weekday].mean()
        assert steps_per_day * 5 == len(cts)

    def test_spatial_correlation_neighbors_exceed_random(self):
        cts = traffic_speed_dataset(n_sensors=20, n_days=7, n_events=0,
                                    rng=np.random.default_rng(2))
        residual = cts.values - cts.values.mean(axis=1, keepdims=True)
        corr = np.corrcoef(residual.T)
        ring_pairs = [(i, (i + 1) % 20) for i in range(20)]
        far_pairs = [(i, (i + 10) % 20) for i in range(20)]
        near = np.mean([corr[i, j] for i, j in ring_pairs])
        far = np.mean([corr[i, j] for i, j in far_pairs])
        assert near > far

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            traffic_speed_dataset(n_sensors=2)


class TestTrafficSimulator:
    @pytest.fixture
    def simulator(self):
        net = RoadNetwork.grid(4, 4)
        return TrafficSimulator(net, rng=np.random.default_rng(3))

    def test_requires_network(self):
        with pytest.raises(TypeError):
            TrafficSimulator("not a network")

    def test_sample_times_positive(self, simulator):
        path = simulator.network.shortest_path((0, 0), (3, 3))
        edges = simulator.network.path_edges(path)
        times = simulator.sample_edge_times(edges,
                                            rng=np.random.default_rng(0))
        assert np.all(times > 0)
        assert len(times) == len(edges)

    def test_mean_travel_time_close_to_empirical(self, simulator):
        path = [(0, 0), (0, 1)]
        samples = simulator.sample_path_times(
            path, 4000, rng=np.random.default_rng(1))
        expected = simulator.mean_travel_time((0, 0), (0, 1))
        assert samples.mean() == pytest.approx(expected, rel=0.1)

    def test_rush_hour_times_longer(self, simulator):
        path = simulator.network.shortest_path((0, 0), (3, 3))
        rush = simulator.sample_path_times(
            path, 300, departure_minute=8 * 60,
            rng=np.random.default_rng(2))
        night = simulator.sample_path_times(
            path, 300, departure_minute=3 * 60,
            rng=np.random.default_rng(2))
        assert rush.mean() > night.mean()

    def test_path_times_positively_correlated_along_route(self, simulator):
        """The shared trip factor makes path variance exceed the sum of
        per-edge variances (the E5 phenomenon)."""
        path = simulator.network.shortest_path((0, 0), (3, 3))
        edges = simulator.network.path_edges(path)
        rng = np.random.default_rng(4)
        samples = np.array([
            simulator.sample_edge_times(edges, rng=rng)
            for _ in range(2000)
        ])
        path_variance = samples.sum(axis=1).var()
        independent_variance = samples.var(axis=0).sum()
        assert path_variance > 1.2 * independent_variance


class TestSimulateTrip:
    def test_endpoints_and_monotone_time(self):
        net = RoadNetwork.grid(3, 3)
        path = net.shortest_path((0, 0), (2, 2))
        times = np.full(len(path) - 1, 2.0)
        trajectory = simulate_trip(net, path, times, sample_interval=0.5)
        assert trajectory[0].x == 0.0 and trajectory[0].y == 0.0
        assert (trajectory[-1].x, trajectory[-1].y) == net.position((2, 2))
        gaps = np.diff(trajectory.times())
        assert np.all(gaps > 0)

    def test_wrong_edge_times(self):
        net = RoadNetwork.grid(3, 3)
        path = net.shortest_path((0, 0), (2, 2))
        with pytest.raises(ValueError):
            simulate_trip(net, path, [1.0])


class TestTrajectoryGenerator:
    def test_generate_returns_matched_pairs(self):
        net = RoadNetwork.grid(5, 5)
        sim = TrafficSimulator(net, rng=np.random.default_rng(0))
        gen = TrajectoryGenerator(sim, rng=np.random.default_rng(1))
        trips = gen.generate(5, min_hops=3)
        assert len(trips) == 5
        for path, trajectory in trips:
            assert len(path) - 1 >= 3
            start = net.position(path[0])
            assert trajectory[0].x == pytest.approx(start[0])
            assert trajectory[0].y == pytest.approx(start[1])

    def test_noise_applied(self):
        net = RoadNetwork.grid(5, 5)
        sim = TrafficSimulator(net, rng=np.random.default_rng(0))
        gen = TrajectoryGenerator(sim, rng=np.random.default_rng(1))
        (path, noisy), = gen.generate_on_paths(
            [net.shortest_path((0, 0), (4, 4))], noise_sigma=0.3)
        # noisy points should not all lie exactly on grid lines
        coords = noisy.coordinates()
        on_grid = np.isclose(coords[:, 0] % 1.0, 0.0) | np.isclose(
            coords[:, 1] % 1.0, 0.0)
        assert not on_grid.all()


class TestCloudDemand:
    def test_shapes_and_labels(self):
        series, bursts = cloud_demand_dataset(
            n_days=4, rng=np.random.default_rng(5))
        assert len(series) == 4 * 144
        assert bursts.shape == (len(series),)
        assert np.all(series.values >= 0)

    def test_bursts_raise_demand(self):
        series, bursts = cloud_demand_dataset(
            n_days=14, burst_scale=300.0, rng=np.random.default_rng(6))
        if bursts.any() and (~bursts).any():
            values = series.values[:, 0]
            assert values[bursts].mean() > values[~bursts].mean()

    def test_drift(self):
        series, _ = cloud_demand_dataset(
            n_days=10, drift_per_day=20.0, burst_rate_per_day=0.0,
            rng=np.random.default_rng(7))
        values = series.values[:, 0]
        first, last = values[:144].mean(), values[-144:].mean()
        assert last > first + 100


class TestAnomalies:
    def test_seasonal_series_period(self):
        series = seasonal_series(n_steps=960, period=96, noise_scale=0.0,
                                 rng=np.random.default_rng(0))
        values = series.values[:, 0]
        assert np.allclose(values[:96], values[96:192], atol=1e-9)

    def test_injection_rate_and_labels(self):
        series = seasonal_series(n_steps=2000, rng=np.random.default_rng(1))
        corrupted, labels = inject_anomalies(
            series, 0.05, rng=np.random.default_rng(2))
        assert labels.sum() == pytest.approx(100, abs=15)
        assert len(corrupted) == len(series)

    def test_point_anomalies_are_large(self):
        series = seasonal_series(n_steps=1000, noise_scale=0.1,
                                 rng=np.random.default_rng(3))
        corrupted, labels = inject_anomalies(
            series, 0.03, kinds=("point",), magnitude=6.0,
            rng=np.random.default_rng(4))
        deviation = np.abs(corrupted.values - series.values)[:, 0]
        assert deviation[labels].mean() > 5 * deviation[~labels].mean()

    def test_unknown_kind_rejected(self):
        series = seasonal_series(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            inject_anomalies(series, 0.05, kinds=("weird",))

    def test_clean_points_untouched_for_point_kind(self):
        series = seasonal_series(n_steps=500, rng=np.random.default_rng(5))
        corrupted, labels = inject_anomalies(
            series, 0.04, kinds=("point",), rng=np.random.default_rng(6))
        assert np.allclose(corrupted.values[~labels], series.values[~labels])


class TestWaves:
    def test_field_shape(self):
        seq = wave_field_dataset(n_frames=10, grid=(8, 8),
                                 rng=np.random.default_rng(0))
        assert len(seq) == 10
        assert seq.grid_shape == (8, 8)

    def test_field_is_smooth_in_time(self):
        seq = wave_field_dataset(n_frames=20, grid=(10, 10),
                                 rng=np.random.default_rng(1))
        frames = seq.frames[..., 0]
        step_change = np.abs(np.diff(frames, axis=0)).mean()
        spread = frames.std()
        assert step_change < spread  # consecutive frames are similar

    def test_buoys_static_and_fraction(self):
        seq = wave_field_dataset(n_frames=5, grid=(10, 10),
                                 rng=np.random.default_rng(2))
        observed, mask = sparse_buoy_observations(
            seq, 0.2, rng=np.random.default_rng(3))
        assert mask.sum() == 20
        assert np.isnan(observed[:, ~mask]).all()
        assert not np.isnan(observed[:, mask]).any()

    def test_invalid_fraction(self):
        seq = wave_field_dataset(n_frames=3, rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            sparse_buoy_observations(seq, 0.0)
