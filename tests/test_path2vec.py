"""Tests for road-network path embeddings."""

import numpy as np
import pytest

from repro import RoadNetwork
from repro.analytics.representation import PathEncoder


@pytest.fixture(scope="module")
def encoder():
    network = RoadNetwork.grid(6, 6)
    encoder = PathEncoder(network, n_components=16,
                          rng=np.random.default_rng(0))
    encoder.fit(n_walks=250, walk_length=10)
    return network, encoder


def cosine(a, b):
    return float(a @ b / max(np.linalg.norm(a) * np.linalg.norm(b),
                             1e-12))


class TestPathEncoder:
    def test_embedding_shapes(self, encoder):
        network, enc = encoder
        assert enc.edge_embedding((0, 0), (0, 1)).shape == (16,)
        path = network.shortest_path((0, 0), (3, 3))
        assert enc.path_embedding(path).shape == (16,)

    def test_overlapping_paths_more_similar(self, encoder):
        """The representation-learning sanity property: paths sharing
        most of their edges embed close; disjoint paths do not."""
        network, enc = encoder
        a = network.shortest_path((0, 0), (0, 5))
        b = network.shortest_path((0, 0), (1, 5))
        c = network.shortest_path((5, 0), (5, 5))
        assert enc.similarity(a, b) > enc.similarity(a, c) + 0.3

    def test_adjacent_edges_more_similar_than_distant(self, encoder):
        _, enc = encoder
        near = cosine(enc.edge_embedding((0, 0), (0, 1)),
                      enc.edge_embedding((0, 1), (0, 2)))
        far = cosine(enc.edge_embedding((0, 0), (0, 1)),
                     enc.edge_embedding((5, 4), (5, 5)))
        assert near > far

    def test_self_similarity_is_one(self, encoder):
        network, enc = encoder
        path = network.shortest_path((0, 0), (2, 2))
        assert enc.similarity(path, path) == pytest.approx(1.0)

    def test_fit_from_explicit_paths(self):
        network = RoadNetwork.grid(4, 4)
        paths = [network.shortest_path((0, 0), (3, 3)),
                 network.shortest_path((3, 0), (0, 3))]
        encoder = PathEncoder(network, n_components=8, n_epochs=2,
                              rng=np.random.default_rng(1))
        encoder.fit(paths * 10)
        assert encoder.path_embedding(paths[0]).shape == (8,)

    def test_requires_fit(self):
        network = RoadNetwork.grid(3, 3)
        encoder = PathEncoder(network)
        with pytest.raises(RuntimeError):
            encoder.edge_embedding((0, 0), (0, 1))

    def test_rejects_empty_corpus(self):
        network = RoadNetwork.grid(3, 3)
        encoder = PathEncoder(network, rng=np.random.default_rng(2))
        with pytest.raises(ValueError):
            encoder.fit([])

    def test_type_check(self):
        with pytest.raises(TypeError):
            PathEncoder("not a network")

    def test_random_walks_stay_on_network(self, encoder):
        network, enc = encoder
        walks = enc.random_walks(n_walks=10, walk_length=5)
        for walk in walks:
            network.path_edges(walk)  # raises if any hop is invalid


class TestDownstreamTravelTime:
    def test_embeddings_predict_path_travel_time(self):
        """LightPath's downstream task: a linear model on frozen path
        embeddings estimates path travel times far better than the
        embedding-free mean."""
        from repro.datasets import TrafficSimulator
        from repro.analytics.forecasting.linear import ridge_fit

        network = RoadNetwork.grid(6, 6)
        simulator = TrafficSimulator(network,
                                     rng=np.random.default_rng(3))
        encoder = PathEncoder(network, n_components=16,
                              rng=np.random.default_rng(4))
        encoder.fit(n_walks=250, walk_length=10)

        rng = np.random.default_rng(5)
        nodes = network.nodes()
        paths, times = [], []
        while len(paths) < 80:
            a, b = rng.choice(len(nodes), 2, replace=False)
            a, b = nodes[int(a)], nodes[int(b)]
            path = network.shortest_path(a, b)
            if len(path) < 3:
                continue
            paths.append(path)
            # Historical average travel time: the downstream label.
            times.append(simulator.sample_path_times(
                path, 20, departure_minute=480, rng=rng).mean())
        X = np.stack([
            encoder.path_embedding(p, pooling="sum") for p in paths])
        y = np.asarray(times)
        train, test = slice(0, 60), slice(60, 80)
        weights, intercept = ridge_fit(X[train], y[train], 1.0)
        predicted = (X[test] @ weights + intercept)[:, 0]
        model_error = np.abs(predicted - y[test]).mean()
        mean_error = np.abs(y[train].mean() - y[test]).mean()
        assert model_error < 0.6 * mean_error
