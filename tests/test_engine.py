"""Tests for the DAG execution engine behind :class:`DecisionPipeline`.

Covers stage contracts and their runtime validation, dependency
resolution, concurrent scheduling (wall clock below the sequential
sum for contract-independent stages), failure policies (fail / skip /
fallback with bounded retries), the content-keyed stage cache and its
E1 ``without_stage`` cone semantics, and the tracer/report
observability surface.
"""

import threading
import time

import pytest

from repro.core import (
    ANY,
    CollectingTracer,
    ContractViolation,
    DecisionPipeline,
    StageCache,
    StageFailure,
)
from repro.core.dag import (
    critical_path_seconds,
    is_chain,
    resolve_dependencies,
)
from repro.core.stage import Stage


# -- stage construction & contracts ----------------------------------------


class TestStageContracts:
    def test_duplicate_stage_name_rejected(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("load", lambda s: "a")
        with pytest.raises(ValueError, match="duplicate"):
            pipeline.add_governance("load", lambda s: "b")

    def test_duplicate_rejected_within_layer(self):
        pipeline = DecisionPipeline()
        pipeline.add_governance("impute", lambda s: "a",
                                reads=(), writes=("x",))
        with pytest.raises(ValueError, match="duplicate"):
            pipeline.add_governance("impute", lambda s: "b")

    def test_undeclared_write_raises(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("sneaky",
                          lambda s: s.update(hidden=1) or "done",
                          reads=(), writes=("visible",))
        with pytest.raises(ContractViolation, match="hidden"):
            pipeline.run()

    def test_undeclared_read_raises(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("peek", lambda s: f"got {s['secret']}",
                          reads=(), writes=())
        with pytest.raises(ContractViolation, match="secret"):
            pipeline.run({"secret": 42})

    def test_stage_may_read_its_own_writes(self):
        pipeline = DecisionPipeline()
        pipeline.add_data(
            "rmw", lambda s: s.update(n=s.setdefault("n", 0) + 1)
            or f"n={s['n']}", reads=(), writes=("n",))
        state, report = pipeline.run()
        assert state["n"] == 1

    def test_contract_restricts_visibility(self):
        seen = {}

        def observe(s):
            seen["keys"] = sorted(s)
            seen["has_b"] = "b" in s
            return "observed"

        pipeline = DecisionPipeline()
        pipeline.add_data("observe", observe, reads=("a",), writes=())
        pipeline.run({"a": 1, "b": 2})
        assert seen["keys"] == ["a"]
        assert seen["has_b"] is False

    def test_invalid_policy_and_contract_types(self):
        pipeline = DecisionPipeline()
        with pytest.raises(ValueError):
            pipeline.add_data("x", lambda s: "x", on_error="explode")
        with pytest.raises(TypeError):
            pipeline.add_data("x", lambda s: "x", reads="not-a-set")
        with pytest.raises(TypeError):
            pipeline.add_data("x", lambda s: "x", on_error="fallback")
        with pytest.raises(ValueError):
            pipeline.add_data("x", lambda s: "x", retries=-1)
        with pytest.raises(ValueError):
            pipeline.add_data("x", lambda s: "x",
                              fallback=lambda s: "y")


# -- dependency resolution --------------------------------------------------


class TestDagResolution:
    def test_wildcard_stages_resolve_to_chain(self):
        stages = [Stage("data", "a", lambda s: "a"),
                  Stage("governance", "b", lambda s: "b"),
                  Stage("decision", "c", lambda s: "c")]
        deps = resolve_dependencies(stages)
        assert is_chain(deps)

    def test_contract_independence_drops_edges(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("load", lambda s: "x",
                          reads=(), writes=("x",))
        pipeline.add_governance("g1", lambda s: "a",
                                reads=("x",), writes=("a",))
        pipeline.add_governance("g2", lambda s: "b",
                                reads=("x",), writes=("b",))
        pipeline.add_decision("join", lambda s: "j",
                              reads=("a", "b"), writes=())
        dag = pipeline.resolved_dag()
        assert dag["g1"] == ("load",)
        assert dag["g2"] == ("load",)
        assert dag["join"] == ("g1", "g2")

    def test_write_after_read_orders_stages(self):
        # A later stage overwriting a key an earlier stage reads must
        # wait for that reader (no torn reads).
        pipeline = DecisionPipeline()
        pipeline.add_data("produce", lambda s: "p",
                          reads=(), writes=("x",))
        pipeline.add_analytics("consume", lambda s: "c",
                               reads=("x",), writes=("y",))
        pipeline.add_decision("overwrite", lambda s: "o",
                              reads=(), writes=("x",))
        dag = pipeline.resolved_dag()
        assert "consume" in dag["overwrite"]

    def test_layer_order_preserved_for_conflicting_contracts(self):
        order = []
        pipeline = DecisionPipeline()
        pipeline.add_decision("d", lambda s: order.append("d") or "d",
                              reads=("x",), writes=())
        pipeline.add_data("a", lambda s: order.append("a") or "a",
                          reads=(), writes=("x",))
        pipeline.run()
        assert order == ["a", "d"]

    def test_critical_path_math(self):
        durations = [1.0, 2.0, 3.0, 1.0]
        deps = [set(), {0}, {0}, {1, 2}]
        assert critical_path_seconds(durations, deps) == 5.0


# -- concurrent scheduling --------------------------------------------------


class TestScheduler:
    def test_independent_stages_run_concurrently(self):
        # The acceptance criterion: >= 2 contract-independent
        # governance stages of >= 10 ms each must finish in
        # measurably less wall-clock time than their sequential sum.
        nap = 0.04

        def sleeper(key):
            def stage(s):
                time.sleep(nap)
                s[key] = True
                return key
            return stage

        pipeline = DecisionPipeline("parallel governance")
        pipeline.add_data("load", lambda s: s.update(x=1) or "loaded",
                          reads=(), writes=("x",))
        for key in ("a", "b", "c"):
            pipeline.add_governance(f"g_{key}", sleeper(key),
                                    reads=("x",), writes=(key,))
        pipeline.add_decision("join",
                              lambda s: f"{s['a']}{s['b']}{s['c']}",
                              reads=("a", "b", "c"), writes=())
        state, report = pipeline.run()
        assert state["a"] and state["b"] and state["c"]
        assert report.total_seconds >= 3 * nap
        assert report.wall_seconds < 0.75 * report.total_seconds
        assert (report.critical_path_seconds
                < 0.75 * report.total_seconds)

    def test_concurrent_stages_see_consistent_state(self):
        barrier = threading.Barrier(2, timeout=5)

        def worker(key):
            def stage(s):
                barrier.wait()  # proves both stages are in flight
                s[key] = s["x"] + 1
                return key
            return stage

        pipeline = DecisionPipeline()
        pipeline.add_data("load", lambda s: s.update(x=1) or "loaded",
                          reads=(), writes=("x",))
        pipeline.add_governance("g1", worker("a"),
                                reads=("x",), writes=("a",))
        pipeline.add_governance("g2", worker("b"),
                                reads=("x",), writes=("b",))
        state, _ = pipeline.run()
        assert state["a"] == state["b"] == 2

    def test_wildcard_pipeline_runs_sequentially(self):
        active = []
        overlaps = []

        def stage(name):
            def run(s):
                active.append(name)
                overlaps.append(len(active))
                time.sleep(0.005)
                active.remove(name)
                return name
            return run

        pipeline = DecisionPipeline()
        for name in ("a", "b", "c"):
            pipeline.add_governance(name, stage(name))
        pipeline.run()
        assert max(overlaps) == 1


# -- failure policies -------------------------------------------------------


class TestFailurePolicies:
    def test_stage_raising_mid_run_aborts_with_partial_report(self):
        ran = []
        pipeline = DecisionPipeline()
        pipeline.add_data("ok", lambda s: ran.append("ok") or "ok",
                          reads=(), writes=("x",))
        pipeline.add_governance("boom",
                                lambda s: 1 / 0,
                                reads=("x",), writes=("y",))
        pipeline.add_decision("never",
                              lambda s: ran.append("never") or "n",
                              reads=("y",), writes=())
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run()
        assert ran == ["ok"]
        failure = excinfo.value
        assert failure.stage == "boom"
        assert failure.report.record("boom").status == "failed"
        assert failure.report.record("ok").status == "ok"

    def test_skip_policy_lets_the_dag_proceed(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("bad", lambda s: 1 / 0,
                          reads=(), writes=("y",), on_error="skip")
        pipeline.add_decision("after", lambda s: "ran anyway",
                              reads=(), writes=())
        state, report = pipeline.run()
        assert report.record("bad").status == "skipped"
        assert report.record("bad").error is not None
        assert report.record("after").summary == "ran anyway"

    def test_fallback_policy_engages(self):
        pipeline = DecisionPipeline()
        pipeline.add_governance(
            "risky", lambda s: 1 / 0,
            reads=(), writes=("z",), on_error="fallback",
            fallback=lambda s: s.update(z=0) or "substituted")
        pipeline.add_decision("use", lambda s: f"z={s['z']}",
                              reads=("z",), writes=())
        state, report = pipeline.run()
        assert state["z"] == 0
        record = report.record("risky")
        assert record.status == "fallback"
        assert record.summary == "substituted"
        assert report.record("use").summary == "z=0"

    def test_fallback_obeys_the_contract_too(self):
        pipeline = DecisionPipeline()
        pipeline.add_governance(
            "risky", lambda s: 1 / 0,
            reads=(), writes=("z",), on_error="fallback",
            fallback=lambda s: s.update(other=1) or "bad fallback")
        with pytest.raises(ContractViolation):
            pipeline.run()

    def test_retries_then_success(self):
        calls = {"n": 0}

        def flaky(s):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            s["ok"] = True
            return "finally"

        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", flaky,
                          reads=(), writes=("ok",), retries=5)
        state, report = pipeline.run()
        assert calls["n"] == 3
        assert report.record("flaky").retries == 2
        assert report.total_retries == 2

    def test_retry_exhaustion_applies_policy(self):
        calls = {"n": 0}

        def always_fails(s):
            calls["n"] += 1
            raise RuntimeError("permanent")

        pipeline = DecisionPipeline()
        pipeline.add_data("doomed", always_fails,
                          reads=(), writes=(), retries=2)
        with pytest.raises(StageFailure, match="3 attempt"):
            pipeline.run()
        assert calls["n"] == 3  # 1 + 2 retries

    def test_contract_violation_is_never_absorbed(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("sneaky",
                          lambda s: s.update(hidden=1) or "done",
                          reads=(), writes=(), on_error="skip",
                          retries=3)
        with pytest.raises(ContractViolation):
            pipeline.run()


# -- stage cache ------------------------------------------------------------


def _load(s):
    s["x"] = 1
    return "loaded"


def _g1(s):
    s["a"] = s["x"] + 1
    return "g1"


def _g2(s):
    s["b"] = s["x"] + 2
    return "g2"


def _decide(s):
    s["d"] = s["a"] * 10 + s["threshold"]
    return "decided"


def _build_cached_pipeline():
    pipeline = DecisionPipeline("cache")
    pipeline.add_data("load", _load, reads=(), writes=("x",))
    pipeline.add_governance("g1", _g1, reads=("x",), writes=("a",))
    pipeline.add_governance("g2", _g2, reads=("x",), writes=("b",))
    pipeline.add_decision("decide", _decide,
                          reads=("a", "threshold"), writes=("d",))
    return pipeline


class TestStageCache:
    def test_identical_rerun_replays_everything(self):
        cache = StageCache()
        initial = {"threshold": 5}
        state1, report1 = _build_cached_pipeline().run(initial,
                                                       cache=cache)
        state2, report2 = _build_cached_pipeline().run(initial,
                                                       cache=cache)
        assert report1.cache_hits == 0
        assert report2.cache_hits == 4
        assert state1 == state2
        assert [r.cache_hit for r in report2.records] == [True] * 4

    def test_without_stage_replays_outside_the_cone(self):
        # E1's ablation: removing g2 leaves load, g1 and decide with
        # unchanged upstream cones, so all replay from cache.
        cache = StageCache()
        initial = {"threshold": 5}
        _build_cached_pipeline().run(initial, cache=cache)
        ablated = _build_cached_pipeline().without_stage("g2")
        state, report = ablated.run(initial, cache=cache)
        assert len(report.records) == 3
        assert report.cache_hits == 3
        assert state["d"] == 25

    def test_removed_stage_cone_reexecutes(self):
        # Removing g1 invalidates decide (it consumed g1's output):
        # decide re-executes against the initial state's fallback "a".
        cache = StageCache()
        initial = {"threshold": 5, "a": 100}
        _build_cached_pipeline().run(initial, cache=cache)
        ablated = _build_cached_pipeline().without_stage("g1")
        state, report = ablated.run(initial, cache=cache)
        hits = {r.name: r.cache_hit for r in report.records}
        assert hits["load"] and hits["g2"]
        assert not hits["decide"]
        assert state["d"] == 1005  # recomputed from the initial "a"

    def test_changed_external_input_invalidates_reader_only(self):
        cache = StageCache()
        _build_cached_pipeline().run({"threshold": 5}, cache=cache)
        state, report = _build_cached_pipeline().run({"threshold": 7},
                                                     cache=cache)
        hits = {r.name: r.cache_hit for r in report.records}
        assert hits["load"] and hits["g1"] and hits["g2"]
        assert not hits["decide"]
        assert state["d"] == 27

    def test_wildcard_stages_are_not_cached(self):
        cache = StageCache()
        pipeline = DecisionPipeline()
        pipeline.add_data("legacy", lambda s: s.update(x=1) or "x")
        pipeline.run(cache=cache)
        assert len(cache) == 0
        _, report = pipeline.run(cache=cache)
        assert report.cache_hits == 0

    def test_changed_function_misses(self):
        cache = StageCache()
        pipeline = DecisionPipeline()
        pipeline.add_data("load", _load, reads=(), writes=("x",))
        pipeline.run(cache=cache)
        other = DecisionPipeline()
        other.add_data("load", lambda s: s.update(x=2) or "loaded v2",
                       reads=(), writes=("x",))
        state, report = other.run(cache=cache)
        assert report.cache_hits == 0
        assert state["x"] == 2


# -- observability ----------------------------------------------------------


class TestObservability:
    def test_report_exposes_wall_and_total_seconds(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("nap", lambda s: time.sleep(0.01) or "ok")
        _, report = pipeline.run()
        assert report.wall_seconds >= 0.01
        assert report.total_seconds >= 0.01
        rendered = report.render()
        assert "total stage time" in rendered
        assert "wall clock" in rendered
        assert "critical path" in rendered

    def test_report_records_the_dag(self):
        pipeline = _build_cached_pipeline()
        _, report = pipeline.run({"threshold": 5})
        assert dict(report.dag) == pipeline.resolved_dag()

    def test_tracer_sees_the_stage_lifecycle(self):
        tracer = CollectingTracer()
        pipeline = DecisionPipeline()
        pipeline.add_data("load", _load, reads=(), writes=("x",))
        pipeline.run(tracer=tracer)
        kinds = tracer.kinds()
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "stage_start" in kinds and "stage_end" in kinds

    def test_tracer_sees_cache_hits_and_errors(self):
        cache = StageCache()
        pipeline = DecisionPipeline()
        pipeline.add_data("load", _load, reads=(), writes=("x",))
        pipeline.run(cache=cache)
        tracer = CollectingTracer()
        pipeline.run(cache=cache, tracer=tracer)
        assert len(tracer.of_kind("cache_hit")) == 1

        tracer = CollectingTracer()
        failing = DecisionPipeline()
        failing.add_data("bad", lambda s: 1 / 0,
                         reads=(), writes=(), on_error="skip")
        failing.run(tracer=tracer)
        assert len(tracer.of_kind("stage_error")) == 1
        assert len(tracer.of_kind("stage_skip")) == 1

    def test_broken_tracer_does_not_break_the_run(self):
        class Hostile:
            def on_event(self, event):
                raise RuntimeError("observer bug")

        pipeline = DecisionPipeline()
        pipeline.add_data("load", _load, reads=(), writes=("x",))
        state, _ = pipeline.run(tracer=Hostile())
        assert state["x"] == 1

    def test_render_marks_cache_and_status(self):
        cache = StageCache()
        pipeline = DecisionPipeline()
        pipeline.add_data("load", _load, reads=(), writes=("x",))
        pipeline.add_governance("bad", lambda s: 1 / 0,
                                reads=(), writes=(), on_error="skip")
        pipeline.run(cache=cache)
        _, report = pipeline.run(cache=cache)
        rendered = report.render()
        assert "[cached]" in rendered
        assert "skipped" in rendered
        assert "cache hits: 1" in rendered
