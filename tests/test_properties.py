"""Cross-cutting property-based tests (hypothesis).

Each property is an invariant DESIGN.md calls out for a core data
structure or algorithm, checked on randomized inputs rather than
hand-picked examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RoadNetwork, TimeSeries
from repro.analytics.classification import dtw_distance
from repro.analytics.metrics import mae, rmse, smape
from repro.governance.uncertainty import Histogram
from repro.decision import (
    RiskAverseUtility,
    RiskNeutralUtility,
    certainty_equivalent,
    dominance_prune,
    first_order_dominates,
    pareto_front,
)
from repro.decision.pareto import dominates


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 300), shift=st.floats(0.1, 10.0))
def test_utilities_respect_fsd(seed, shift):
    """Any decreasing utility prefers an FSD-dominant cost: utilities
    and dominance must never disagree."""
    rng = np.random.default_rng(seed)
    base = Histogram.from_samples(rng.gamma(3.0, 2.0, 300), n_bins=25)
    worse = base.shift(shift)
    for utility in (RiskNeutralUtility(),
                    RiskAverseUtility(aversion=1.5, scale=10.0)):
        assert utility.expected(base) > utility.expected(worse)


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 300))
def test_certainty_equivalent_within_support(seed):
    """The certainty equivalent always lies inside the cost support."""
    rng = np.random.default_rng(seed)
    cost = Histogram.from_samples(rng.normal(10, 3, 300), n_bins=25)
    for utility in (RiskNeutralUtility(),
                    RiskAverseUtility(aversion=2.0, scale=10.0)):
        equivalent = certainty_equivalent(cost, utility)
        assert cost.min() - 1e-6 <= equivalent <= cost.max() + 1e-6


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 200), n=st.integers(3, 15))
def test_dominance_prune_keeps_minimum_mean(seed, n):
    """The candidate with the smallest mean is never FSD-dominated
    (nothing can have a CDF everywhere above it AND a smaller mean)."""
    rng = np.random.default_rng(seed)
    candidates = [
        Histogram.from_samples(
            rng.normal(rng.uniform(5, 15), rng.uniform(0.5, 3.0), 200),
            n_bins=20)
        for _ in range(n)
    ]
    survivors = dominance_prune(candidates)
    best_mean = int(np.argmin([c.mean() for c in candidates]))
    assert best_mean in survivors


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 200), n=st.integers(2, 20),
       k=st.integers(2, 4))
def test_pareto_front_is_complete_and_sound(seed, n, k):
    """Every non-front point is dominated by some front point, and no
    front point is dominated at all."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0, 1, size=(n, k))
    front = pareto_front(costs)
    front_set = set(front)
    for index in range(n):
        if index in front_set:
            assert not any(
                dominates(costs[j], costs[index]) for j in range(n))
        else:
            assert any(
                dominates(costs[j], costs[index]) for j in front)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 100), length=st.integers(5, 40))
def test_dtw_lower_bounded_by_zero_and_symmetric(seed, length):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=length)
    b = rng.normal(size=length + int(rng.integers(0, 5)))
    d_ab = dtw_distance(a, b)
    assert d_ab >= 0
    assert d_ab == pytest.approx(dtw_distance(b, a))


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 100))
def test_dtw_never_exceeds_euclidean(seed):
    """For equal-length series, DTW is at most the Euclidean distance
    (the diagonal path is always available)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=25)
    b = rng.normal(size=25)
    euclidean = float(np.sqrt(((a - b) ** 2).sum()))
    assert dtw_distance(a, b) <= euclidean + 1e-9


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 200), n=st.integers(2, 50))
def test_metric_inequalities(seed, n):
    """RMSE >= MAE always; sMAPE bounded by 200."""
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=n)
    predicted = rng.normal(size=n)
    assert rmse(truth, predicted) >= mae(truth, predicted) - 1e-12
    assert 0.0 <= smape(truth, predicted) <= 200.0 + 1e-9


@settings(deadline=None, max_examples=15)
@given(rows=st.integers(2, 5), cols=st.integers(2, 5))
def test_grid_shortest_paths_are_manhattan(rows, cols):
    """On a unit grid, shortest-path length equals the Manhattan
    distance for every node pair."""
    network = RoadNetwork.grid(rows, cols)
    rng = np.random.default_rng(rows * 10 + cols)
    nodes = network.nodes()
    for _ in range(5):
        a, b = rng.choice(len(nodes), 2, replace=False)
        a, b = nodes[int(a)], nodes[int(b)]
        expected = abs(a[0] - b[0]) + abs(a[1] - b[1])
        assert network.shortest_path_length(a, b) == pytest.approx(
            expected)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 100), n_bins=st.integers(2, 40))
def test_histogram_quantile_cdf_galois(seed, n_bins):
    """quantile(q) is the smallest support point with CDF >= q."""
    rng = np.random.default_rng(seed)
    histogram = Histogram.from_samples(rng.normal(0, 1, 200),
                                       n_bins=n_bins)
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        value = histogram.quantile(q)
        assert histogram.cdf(value) >= q - 1e-9
        smaller = value - histogram.width
        if smaller >= histogram.min():
            assert histogram.cdf(smaller) < q + 1e-9


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 100),
       missing=st.floats(0.05, 0.4))
def test_imputation_preserves_observed_everywhere(seed, missing):
    """No imputer may alter an observed value (governance contract)."""
    from repro.governance.imputation import (
        KalmanImputer,
        impute_linear,
        impute_locf,
        impute_seasonal,
    )

    rng = np.random.default_rng(seed)
    clean = TimeSeries(rng.normal(size=(60, 2)))
    gappy = clean.corrupt(missing, rng)
    observed = gappy.mask
    for method in (impute_locf, impute_linear,
                   lambda s: impute_seasonal(s, 12),
                   lambda s: KalmanImputer(3).impute(s)):
        filled = method(gappy)
        assert np.allclose(filled.values[observed],
                           gappy.values[observed])


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 100), length=st.integers(10, 60))
def test_generator_output_within_history_envelope(seed, length):
    """Bootstrap scenarios cannot wander far outside the history's
    value range (they are stitched from it)."""
    from repro.analytics.generative import BlockBootstrapGenerator

    rng = np.random.default_rng(seed)
    history = TimeSeries(rng.normal(0, 1, 200))
    generator = BlockBootstrapGenerator(
        block_length=10, rng=np.random.default_rng(seed + 1))
    generator.fit(history)
    path = generator.sample(length)
    spread = history.values.max() - history.values.min()
    assert path.max() <= history.values.max() + spread
    assert path.min() >= history.values.min() - spread
