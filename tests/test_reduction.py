"""Scenario reduction: exact-W1/DTW distances, forward selection and
the decision-layer wiring.

Every vectorized kernel is equivalence-gated against its kept
brute-force oracle (`_wasserstein_pairwise`, the analytics
``dtw_distance``, `_reduce_reference`), and the degenerate ensemble
shapes production traffic produces — single candidate, all-identical,
zero-mass padding bins — go through ``dominance_prune`` /
``select_best`` / ``reduce_scenarios`` with the safety invariants:
output ⊆ input, probabilities sum to one, the optimum survives.
"""

import pickle

import numpy as np
import pytest

from repro import RoadNetwork
from repro.analytics.classification.distance import dtw_distance
from repro.datasets import TrafficSimulator
from repro.decision import (
    RiskAverseUtility,
    RiskNeutralUtility,
    StochasticRouter,
    dominance_prune,
    dtw_band_matrix,
    fan_chart,
    rank_plot,
    reduce_scenarios,
    select_best,
    stochastic_pareto_front,
    wasserstein_distance,
    wasserstein_matrix,
)
from repro.decision.reduction import (
    _reduce_reference,
    _wasserstein_pairwise,
)
from repro.decision.utility import DeadlineUtility
from repro.governance.uncertainty import EdgeCentricModel, Histogram
from repro.observability.metrics import use_registry


def random_histogram(rng, *, zero_mass=0.0):
    probabilities = rng.random(int(rng.integers(2, 12)))
    if zero_mass:
        mask = rng.random(len(probabilities)) < zero_mass
        probabilities[mask] = 0.0
        if probabilities.sum() == 0:
            probabilities[0] = 1.0
    return Histogram(rng.uniform(0.0, 5.0), rng.uniform(0.1, 2.0),
                     probabilities)


def random_ensemble(rng, n, **kwargs):
    return [random_histogram(rng, **kwargs) for _ in range(n)]


class TestWassersteinDistance:
    def test_point_masses(self):
        a = Histogram.point_mass(3.0)
        b = Histogram.point_mass(7.5)
        assert wasserstein_distance(a, b) == pytest.approx(4.5)

    def test_identical_is_zero(self):
        rng = np.random.default_rng(0)
        h = random_histogram(rng)
        assert wasserstein_distance(h, h) == 0.0

    def test_translation_equivariance(self):
        rng = np.random.default_rng(1)
        a, b = random_histogram(rng), random_histogram(rng)
        base = wasserstein_distance(a, b)
        assert wasserstein_distance(a.shift(3.0), b.shift(3.0)) == \
            pytest.approx(base)
        # Shifting one histogram changes W1 by at most the shift.
        assert wasserstein_distance(a.shift(1.0), b) == \
            pytest.approx(base, abs=1.0 + 1e-9)

    def test_mean_difference_lower_bound(self):
        """W1 >= |E[X] - E[Y]| with equality for a pure shift."""
        rng = np.random.default_rng(2)
        for _ in range(10):
            a, b = random_histogram(rng), random_histogram(rng)
            assert wasserstein_distance(a, b) >= \
                abs(a.mean() - b.mean()) - 1e-9
        h = random_histogram(rng)
        assert wasserstein_distance(h, h.shift(2.5)) == \
            pytest.approx(2.5)

    def test_metric_axioms(self):
        rng = np.random.default_rng(3)
        a, b, c = (random_histogram(rng) for _ in range(3))
        ab = wasserstein_distance(a, b)
        assert ab == pytest.approx(wasserstein_distance(b, a))
        assert ab >= 0.0
        assert ab <= wasserstein_distance(a, c) \
            + wasserstein_distance(c, b) + 1e-9

    def test_rejects_non_histograms(self):
        with pytest.raises(TypeError):
            wasserstein_distance(Histogram.point_mass(0.0), 1.0)


class TestWassersteinMatrix:
    def test_matches_pairwise_oracle(self):
        rng = np.random.default_rng(4)
        ensemble = random_ensemble(rng, 25, zero_mass=0.3)
        np.testing.assert_allclose(wasserstein_matrix(ensemble),
                                   _wasserstein_pairwise(ensemble),
                                   atol=1e-10)

    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(5)
        matrix = wasserstein_matrix(random_ensemble(rng, 10))
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    def test_empty_and_single(self):
        assert wasserstein_matrix([]).shape == (0, 0)
        single = wasserstein_matrix([Histogram.point_mass(1.0)])
        np.testing.assert_allclose(single, [[0.0]])

    def test_rejects_non_histograms(self):
        with pytest.raises(TypeError):
            wasserstein_matrix([Histogram.point_mass(0.0), "no"])


class TestDtwBandMatrix:
    @pytest.mark.parametrize("band", [None, 2, 5])
    def test_matches_analytics_oracle(self, band):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(8, 15))
        matrix = dtw_band_matrix(X, band=band)
        for i in range(8):
            for j in range(8):
                assert matrix[i, j] == pytest.approx(
                    dtw_distance(X[i], X[j], band=band), abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_band_matrix(np.zeros(5))
        with pytest.raises(ValueError):
            dtw_band_matrix(np.zeros((3, 0)))


class TestForwardSelection:
    def test_matches_reference_oracle(self):
        rng = np.random.default_rng(7)
        for _ in range(15):
            n = int(rng.integers(4, 20))
            distance = np.abs(rng.normal(size=(n, n)))
            distance = distance + distance.T
            np.fill_diagonal(distance, 0.0)
            weights = rng.random(n)
            weights /= weights.sum()
            k = int(rng.integers(1, n))
            reduction = reduce_scenarios(
                list(range(n)), k, probabilities=weights,
                distance_matrix=distance)
            assert list(reduction.indices) == \
                sorted(_reduce_reference(distance.tolist(),
                                         weights.tolist(), k))

    def test_invariants(self):
        rng = np.random.default_rng(8)
        ensemble = random_ensemble(rng, 30)
        reduction = reduce_scenarios(ensemble, 8)
        assert reduction.n_input == 30 and reduction.n_reduced == 8
        assert list(reduction.indices) == sorted(set(reduction.indices))
        assert set(reduction.indices) <= set(range(30))
        assert reduction.probabilities.sum() == pytest.approx(1.0)
        assert (reduction.probabilities > 0).all()
        assert reduction.distortion >= 0.0
        # members() partitions the input ensemble.
        members = sorted(
            index for position in range(reduction.n_reduced)
            for index in reduction.members(position))
        assert members == list(range(30))
        for index in range(30):
            assert reduction.representative_of(index) in \
                set(int(i) for i in reduction.indices)

    def test_distortion_decreases_with_k(self):
        rng = np.random.default_rng(9)
        ensemble = random_ensemble(rng, 25)
        distortions = [reduce_scenarios(ensemble, k).distortion
                       for k in (2, 5, 10, 25)]
        assert all(a >= b - 1e-12
                   for a, b in zip(distortions, distortions[1:]))
        assert distortions[-1] == 0.0  # identity reduction

    def test_identity_when_k_at_least_n(self):
        rng = np.random.default_rng(10)
        ensemble = random_ensemble(rng, 5)
        reduction = reduce_scenarios(ensemble, 9)
        assert list(reduction.indices) == list(range(5))
        assert reduction.distortion == 0.0
        np.testing.assert_allclose(reduction.probabilities, 0.2)

    def test_trajectory_metrics(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(12, 10))
        for metric, band in (("dtw", 3), ("euclidean", None)):
            reduction = reduce_scenarios(X, 4, metric=metric,
                                         band=band)
            assert reduction.n_reduced == 4
            assert reduction.probabilities.sum() == pytest.approx(1.0)

    def test_export_round_trips_through_json(self):
        import json

        rng = np.random.default_rng(12)
        reduction = reduce_scenarios(random_ensemble(rng, 10), 3)
        exported = json.loads(json.dumps(reduction.export()))
        assert exported["n_input"] == 10
        assert exported["n_reduced"] == 3
        assert len(exported["assignment"]) == 10
        assert sum(exported["probabilities"]) == pytest.approx(1.0)

    def test_validation(self):
        rng = np.random.default_rng(13)
        ensemble = random_ensemble(rng, 4)
        with pytest.raises(ValueError):
            reduce_scenarios([], 2)
        with pytest.raises(ValueError):
            reduce_scenarios(ensemble, 0)
        with pytest.raises(ValueError):
            reduce_scenarios(ensemble, 2, probabilities=[0.5, 0.5])
        with pytest.raises(ValueError):
            reduce_scenarios(ensemble, 2,
                             distance_matrix=np.zeros((3, 3)))
        with pytest.raises(ValueError):
            reduce_scenarios(ensemble, 2, metric="mahalanobis")

    def test_publishes_metrics(self):
        rng = np.random.default_rng(14)
        with use_registry() as registry:
            reduce_scenarios(random_ensemble(rng, 20), 5)
            counter = registry.get(
                "decision.reduction_scenarios_total")
            assert counter.value(direction="in") == 20
            assert counter.value(direction="out") == 5
            snapshot = registry.snapshot()
            series = snapshot["decision.reduction_distortion"]["series"]
            assert series[0]["count"] == 1


class TestHistogramHelpers:
    def test_atoms_drop_zero_mass(self):
        h = Histogram(0.0, 1.0, [0.0, 0.5, 0.0, 0.5, 0.0])
        values, probabilities = h.atoms()
        np.testing.assert_allclose(values, [1.0, 3.0])
        np.testing.assert_allclose(probabilities, [0.5, 0.5])

    def test_trimmed_keeps_interior_zeros(self):
        h = Histogram(0.0, 1.0, [0.0, 0.5, 0.0, 0.5, 0.0])
        trimmed = h.trimmed()
        assert trimmed.start == 1.0
        np.testing.assert_allclose(trimmed.probabilities,
                                   [0.5, 0.0, 0.5])
        assert trimmed.mean() == pytest.approx(h.mean())

    def test_trimmed_identity_without_padding(self):
        h = Histogram(0.0, 1.0, [0.5, 0.5])
        assert h.trimmed() is h


class TestDecisionWiring:
    def test_reduce_to_prune_is_subset_of_representatives(self):
        rng = np.random.default_rng(15)
        ensemble = random_ensemble(rng, 60)
        reduction = reduce_scenarios(ensemble, 10)
        survivors = dominance_prune(ensemble, reduction=reduction)
        assert set(survivors) <= set(int(i) for i in reduction.indices)
        assert survivors == sorted(survivors)
        fresh = dominance_prune(ensemble, reduce_to=10)
        assert set(fresh) <= set(range(60))

    def test_select_best_zero_regret_with_refinement(self):
        rng = np.random.default_rng(16)
        for utility, unique_argmax in (
                (RiskNeutralUtility(), True),
                (RiskAverseUtility(aversion=0.4, scale=10.0), True),
                (DeadlineUtility(6.0), False)):
            ensemble = random_ensemble(rng, 120)
            full_index, full_value, _ = select_best(ensemble, utility)
            reduced_index, reduced_value, n_evaluated = select_best(
                ensemble, utility, reduce_to=15)
            # Zero utility regret always; the index matches whenever
            # the optimum is unique (step utilities like
            # DeadlineUtility produce exact ties, where any
            # co-optimal candidate is a correct answer).
            assert reduced_value == pytest.approx(full_value)
            if unique_argmax:
                assert reduced_index == full_index
            assert n_evaluated < 120

    def test_reduction_size_mismatch_raises(self):
        rng = np.random.default_rng(17)
        ensemble = random_ensemble(rng, 10)
        reduction = reduce_scenarios(ensemble, 3)
        with pytest.raises(ValueError):
            dominance_prune(ensemble[:5], reduction=reduction)

    def test_degenerate_single_candidate(self):
        only = Histogram(0.0, 1.0, [0.3, 0.7])
        assert dominance_prune([only], reduce_to=5) == [0]
        index, _, _ = select_best([only], RiskNeutralUtility(),
                                  reduce_to=5)
        assert index == 0
        reduction = reduce_scenarios([only], 1)
        assert list(reduction.indices) == [0]
        assert reduction.probabilities.sum() == pytest.approx(1.0)

    def test_degenerate_all_identical(self):
        same = [Histogram(0.0, 1.0, [0.5, 0.5]) for _ in range(8)]
        survivors = dominance_prune(same, reduce_to=3)
        assert set(survivors) <= set(range(8)) and survivors
        index, value, _ = select_best(same, RiskNeutralUtility(),
                                      reduce_to=3)
        assert index in range(8)
        assert value == pytest.approx(-1.0 * same[0].mean())
        reduction = reduce_scenarios(same, 3)
        # All pairwise distances are zero: forward selection stops at
        # the first pick and the survivor carries all the mass.
        assert reduction.n_reduced == 1
        assert reduction.probabilities.sum() == pytest.approx(1.0)
        assert reduction.distortion == 0.0

    def test_degenerate_zero_mass_bins(self):
        rng = np.random.default_rng(18)
        ensemble = random_ensemble(rng, 40, zero_mass=0.5)
        utility = RiskNeutralUtility()
        full_index, full_value, _ = select_best(ensemble, utility)
        reduced_index, reduced_value, _ = select_best(
            ensemble, utility, reduce_to=8)
        assert reduced_index == full_index
        assert reduced_value == pytest.approx(full_value)
        reduction = reduce_scenarios(ensemble, 8)
        assert set(int(i) for i in reduction.indices) <= set(range(40))
        assert reduction.probabilities.sum() == pytest.approx(1.0)


class TestStochasticParetoFront:
    def test_dominated_option_removed(self):
        fast_cheap = (Histogram.point_mass(1.0),
                      Histogram.point_mass(1.0))
        slow_dear = (Histogram.point_mass(3.0),
                     Histogram.point_mass(4.0))
        fast_dear = (Histogram.point_mass(1.0),
                     Histogram.point_mass(4.0))
        front = stochastic_pareto_front(
            [fast_cheap, slow_dear, fast_dear])
        assert front == [0]

    def test_tradeoff_options_all_survive(self):
        a = (Histogram.point_mass(1.0), Histogram.point_mass(4.0))
        b = (Histogram.point_mass(4.0), Histogram.point_mass(1.0))
        assert stochastic_pareto_front([a, b]) == [0, 1]

    def test_matches_scalar_pareto_on_point_masses(self):
        from repro.decision import pareto_front

        rng = np.random.default_rng(19)
        costs = rng.uniform(0.0, 5.0, size=(15, 2))
        options = [
            (Histogram.point_mass(row[0]),
             Histogram.point_mass(row[1]))
            for row in costs
        ]
        assert stochastic_pareto_front(options) == pareto_front(costs)

    def test_reduce_to_returns_representative_subset(self):
        rng = np.random.default_rng(20)
        options = [
            (random_histogram(rng), random_histogram(rng))
            for _ in range(30)
        ]
        front = stochastic_pareto_front(options, reduce_to=8)
        assert set(front) <= set(range(30))
        assert len(front) <= 8

    def test_validation(self):
        assert stochastic_pareto_front([]) == []
        with pytest.raises(ValueError):
            stochastic_pareto_front([()])
        with pytest.raises(TypeError):
            stochastic_pareto_front([(1.0,)])
        with pytest.raises(ValueError):
            stochastic_pareto_front(
                [(Histogram.point_mass(0.0),),
                 (Histogram.point_mass(0.0),
                  Histogram.point_mass(1.0))])


@pytest.fixture(scope="module")
def routed_world():
    network = RoadNetwork.grid(5, 5)
    simulator = TrafficSimulator(network,
                                 rng=np.random.default_rng(21))
    od_pairs = [((0, 0), (4, 4)), ((0, 4), (4, 0))]
    rng = np.random.default_rng(22)
    trips = []
    for origin, destination in od_pairs:
        for path in network.k_shortest_paths(origin, destination, 8):
            edges = network.path_edges(path)
            for _ in range(15):
                trips.append((path,
                              simulator.sample_edge_times(edges, 480,
                                                          rng=rng),
                              480.0))
    model = EdgeCentricModel(n_bins=25).fit(trips)
    return network, model, od_pairs


class TestRouterReduction:
    def test_reduced_router_matches_full_router(self, routed_world):
        network, model, od_pairs = routed_world
        utility = DeadlineUtility(12.0)
        queries = [(origin, destination, 480.0)
                   for origin, destination in od_pairs]
        full = StochasticRouter(network, model, n_candidates=8)
        reduced = StochasticRouter(network, model, n_candidates=8,
                                   reduction=3)
        for want, got in zip(full.route_many(queries, utility),
                             reduced.route_many(queries, utility)):
            if want is None:
                assert got is None
                continue
            assert got[0] == want[0]
            assert got[2] == want[2]

    def test_reduction_memo_reused_across_queries(self, routed_world):
        network, model, od_pairs = routed_world
        router = StochasticRouter(network, model, n_candidates=8,
                                  reduction=3)
        origin, destination = od_pairs[0]
        router.best_path(origin, destination, DeadlineUtility(12.0),
                         departure_minute=480.0)
        assert router.cache_info()["reduction_memo_size"] == 1
        # Same departure window: the memoized reduction is reused.
        router.best_path(origin, destination, DeadlineUtility(9.0),
                         departure_minute=481.0)
        assert router.cache_info()["reduction_memo_size"] == 1
        router.clear_cache()
        assert router.cache_info()["reduction_memo_size"] == 0

    def test_reduced_router_pickles_without_memos(self, routed_world):
        network, model, od_pairs = routed_world
        router = StochasticRouter(network, model, n_candidates=8,
                                  reduction=3)
        origin, destination = od_pairs[0]
        router.best_path(origin, destination, DeadlineUtility(12.0),
                         departure_minute=480.0)
        clone = pickle.loads(pickle.dumps(router))
        assert clone.reduction == 3
        assert clone.cache_info()["reduction_memo_size"] == 0
        want = router.best_path(origin, destination,
                                DeadlineUtility(12.0),
                                departure_minute=480.0)
        got = clone.best_path(origin, destination,
                              DeadlineUtility(12.0),
                              departure_minute=480.0)
        assert got[0] == want[0] and got[2] == want[2]

    def test_invalid_reduction_config_raises(self, routed_world):
        network, model, _ = routed_world
        with pytest.raises(ValueError):
            StochasticRouter(network, model, reduction=0)


class TestFanChart:
    def test_bands_and_mean(self):
        rng = np.random.default_rng(23)
        X = rng.normal(size=(20, 12))
        chart = fan_chart(X)
        assert chart["n_scenarios"] == 20
        assert set(chart["bands"]) == \
            {"0.05", "0.25", "0.5", "0.75", "0.95"}
        np.testing.assert_allclose(chart["mean"], X.mean(axis=0))
        lower = np.asarray(chart["bands"]["0.25"])
        upper = np.asarray(chart["bands"]["0.75"])
        assert (lower <= upper).all()

    def test_weighted_bands_follow_reduction(self):
        rng = np.random.default_rng(24)
        X = rng.normal(size=(30, 8))
        reduction = reduce_scenarios(X, 6, metric="euclidean")
        chart = fan_chart(X[reduction.indices],
                          probabilities=reduction.probabilities)
        assert chart["n_scenarios"] == 6
        # A probability-1 scenario pins every band to its trajectory.
        point = fan_chart(X[:1], probabilities=[1.0])
        for band in point["bands"].values():
            np.testing.assert_allclose(band, X[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            fan_chart(np.zeros(4))
        with pytest.raises(ValueError):
            fan_chart(np.zeros((3, 4)), quantiles=(1.5,))
        with pytest.raises(ValueError):
            fan_chart(np.zeros((3, 4)), probabilities=[0.5, 0.5])


class TestRankPlot:
    def test_ranks_are_permutations_per_step(self):
        rng = np.random.default_rng(25)
        X = rng.normal(size=(9, 7))
        plot = rank_plot(X)
        ranks = np.asarray(plot["ranks"])
        assert ranks.shape == (9, 7)
        for column in ranks.T:
            assert sorted(column) == list(range(9))
        assert sorted(plot["order"]) == list(range(9))

    def test_uniformly_dominant_scenario_ranks_first(self):
        base = np.tile(np.arange(5.0), (4, 1))
        X = base + np.arange(4)[:, None]  # row 0 smallest everywhere
        plot = rank_plot(X)
        assert plot["order"][0] == 0
        assert plot["ranks"][0] == [0] * 5
