"""Tests for the serving layer (DecisionServer + load generator).

Batched serving must be *indistinguishable* from calling the
underlying query APIs directly — every ``ok`` value is equivalence-
checked against a direct single-call oracle — while admission control
(bounded queue, deadline-aware shedding) and per-request deadlines
resolve to typed results instead of exceptions.
"""

import time

import numpy as np
import pytest

from repro import DecisionServer, RoadNetwork
from repro.core import RunDeadlineExceeded
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.decision import StochasticRouter
from repro.decision.utility import DeadlineUtility
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import EdgeCentricModel
from repro.observability.metrics import use_registry
from repro.serve import (
    DistanceQuery,
    MatchQuery,
    Overloaded,
    RouteQuery,
    ServeResult,
    closed_loop,
)


@pytest.fixture(scope="module")
def world():
    """Network + fitted cost model + trajectories, shared read-only."""
    network = RoadNetwork.grid(5, 5)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    trips_xy = generator.generate(4, noise_sigma=0.08,
                                  sample_interval=0.5, min_hops=4)
    trajectories = [trajectory for _, trajectory in trips_xy]
    od_pairs = [((0, 0), (4, 4)), ((0, 4), (4, 0)), ((2, 0), (2, 4))]
    rng = np.random.default_rng(2)
    trips = []
    for origin, destination in od_pairs:
        for path in network.k_shortest_paths(origin, destination, 4):
            edges = network.path_edges(path)
            for _ in range(25):
                trips.append((path,
                              simulator.sample_edge_times(edges, 480,
                                                          rng=rng),
                              480.0))
    model = EdgeCentricModel(n_bins=30).fit(trips)
    return network, model, od_pairs, trajectories


def make_server(world, **kwargs):
    network, model, _, _ = world
    router = StochasticRouter(network, model, n_candidates=4)
    matcher = HmmMapMatcher(network, sigma=0.1, beta=0.5)
    kwargs.setdefault("utility", DeadlineUtility(10.0))
    return DecisionServer(router=router, matcher=matcher, **kwargs), \
        router, matcher


def assert_route_equal(served, direct):
    """``best_path`` triples are equal (histograms compared by value)."""
    if direct is None:
        assert served is None
        return
    path, distribution, value = served
    direct_path, direct_distribution, direct_value = direct
    assert path == direct_path
    np.testing.assert_array_equal(distribution.support,
                                  direct_distribution.support)
    np.testing.assert_array_equal(distribution.probabilities,
                                  direct_distribution.probabilities)
    assert value == direct_value


class StubRouter:
    """Duck-typed router with controllable latency, for admission tests."""

    def __init__(self, delay=0.0):
        self.delay = delay
        self.network = None
        self.calls = []

    def route_many(self, queries, utility, *, prune=True):
        if self.delay:
            time.sleep(self.delay)
        self.calls.append((len(queries), utility))
        return [(origin, destination, minute)
                for origin, destination, minute in queries]


class TestEquivalence:
    def test_route_matches_direct_call(self, world):
        network, model, od_pairs, _ = world
        server, router, _ = make_server(world)
        oracle = StochasticRouter(network, model, n_candidates=4)
        utility = DeadlineUtility(10.0)
        with server:
            for origin, destination in od_pairs:
                result = server.route(origin, destination,
                                      departure_minute=480.0)
                assert result.ok
                direct = oracle.route_many(
                    [(origin, destination, 480.0)], utility)[0]
                assert_route_equal(result.value, direct)

    def test_match_matches_direct_call(self, world):
        network, _, _, trajectories = world
        server, _, _ = make_server(world)
        oracle = HmmMapMatcher(network, sigma=0.1, beta=0.5)
        with server:
            for trajectory in trajectories:
                result = server.match(trajectory)
                assert result.ok
                assert result.value == oracle.match(trajectory)

    def test_distances_match_direct_call(self, world):
        network, _, _, _ = world
        server, _, _ = make_server(world)
        with server:
            for cutoff in (None, 3.0):
                result = server.distances((0, 0), cutoff=cutoff)
                assert result.ok
                np.testing.assert_array_equal(
                    result.value,
                    network.dijkstra_array((0, 0), cutoff=cutoff))

    def test_per_request_utility_overrides_default(self, world):
        network, model, _, _ = world
        server, _, _ = make_server(world, utility=DeadlineUtility(5.0))
        oracle = StochasticRouter(network, model, n_candidates=4)
        tight = DeadlineUtility(6.5)
        with server:
            result = server.route((0, 0), (4, 4),
                                  departure_minute=480.0,
                                  utility=tight)
        direct = oracle.route_many([((0, 0), (4, 4), 480.0)], tight)[0]
        assert_route_equal(result.value, direct)


class TestBatching:
    def test_queued_requests_coalesce_into_one_call(self):
        stub = StubRouter(delay=0.05)
        utility = DeadlineUtility(1.0)
        with DecisionServer(router=stub, utility=utility,
                            batch_window=0.0) as server:
            futures = [server.submit(RouteQuery("a", "b", float(i)))
                       for i in range(9)]
            results = [future.result() for future in futures]
        assert all(result.ok for result in results)
        assert [result.value[2] for result in results] == \
            [float(i) for i in range(9)]
        # Everything submitted while the dispatcher slept coalesced
        # into (at most a couple of) batched backend calls.
        sizes = [size for size, _ in stub.calls]
        assert sum(sizes) == 9
        assert max(sizes) > 1
        assert max(result.batch_size for result in results) == \
            max(sizes)

    def test_max_batch_caps_coalescing(self):
        stub = StubRouter(delay=0.05)
        with DecisionServer(router=stub, utility=DeadlineUtility(1.0),
                            batch_window=0.0, max_batch=4) as server:
            futures = [server.submit(RouteQuery("a", "b", float(i)))
                       for i in range(10)]
            for future in futures:
                future.result()
        assert max(size for size, _ in stub.calls) <= 4

    def test_mixed_utilities_split_into_groups(self):
        stub = StubRouter(delay=0.05)
        u1, u2 = DeadlineUtility(1.0), DeadlineUtility(2.0)
        with DecisionServer(router=stub, utility=u1,
                            batch_window=0.0) as server:
            server.submit(RouteQuery("a", "b", 0.0)).result()
            futures = [
                server.submit(RouteQuery("a", "b", float(i),
                                         utility=u2 if i % 2 else u1))
                for i in range(6)
            ]
            for future in futures:
                future.result()
        utilities = {id(u) for _, u in stub.calls}
        assert utilities == {id(u1), id(u2)}

    def test_distance_queries_deduplicate(self, world):
        network, _, _, _ = world
        calls = []
        original = network.dijkstra_array

        class SlowCountingNetwork:
            def dijkstra_array(self, source, cutoff=None):
                calls.append((source, cutoff))
                time.sleep(0.05)
                return original(source, cutoff=cutoff)

        server = DecisionServer(network=SlowCountingNetwork(),
                                batch_window=0.05)
        with server:
            # Stall the dispatcher so the identical queries coalesce
            # into one batch and share a single search.
            server.submit(DistanceQuery((0, 0)))
            time.sleep(0.01)
            futures = [server.submit(DistanceQuery((1, 1), 2.0))
                       for _ in range(6)]
            rows = [future.result().value for future in futures]
        assert calls.count(((1, 1), 2.0)) == 1
        for row in rows[1:]:
            np.testing.assert_array_equal(row, rows[0])


class TestAdmissionControl:
    def test_full_queue_sheds_with_typed_overloaded(self):
        stub = StubRouter(delay=0.2)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                max_queue=2, batch_window=0.0)
        try:
            # First request occupies the dispatcher; the next two fill
            # the bounded queue; the fourth must shed immediately.
            admitted = [server.submit(RouteQuery("a", "b", 0.0))]
            time.sleep(0.05)
            admitted += [server.submit(RouteQuery("a", "b", 1.0)),
                         server.submit(RouteQuery("a", "b", 2.0))]
            shed = server.submit(RouteQuery("a", "b", 3.0))
            assert shed.done()
            result = shed.result()
            assert isinstance(result, Overloaded)
            assert result.outcome == "overloaded"
            assert result.reason == "queue_full"
            for future in admitted:
                assert future.result().ok
        finally:
            server.close()

    def test_doomed_deadline_sheds_before_queueing(self):
        stub = StubRouter(delay=0.1)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0)
        try:
            # Prime the service-time EWMA (~0.1 s per request).
            server.submit(RouteQuery("a", "b", 0.0)).result()
            assert server.stats()["ewma_service_seconds"] > 0.01
            # Put a slow request in flight plus one queued, then ask
            # for a deadline far below the estimated wait.
            server.submit(RouteQuery("a", "b", 1.0))
            time.sleep(0.02)
            server.submit(RouteQuery("a", "b", 2.0))
            doomed = server.submit(RouteQuery("a", "b", 3.0),
                                   deadline=0.001)
            assert doomed.done()
            result = doomed.result()
            assert isinstance(result, Overloaded)
            assert result.reason == "doomed"
        finally:
            server.close()

    def test_priority_eviction_sheds_lowest_first(self):
        stub = StubRouter(delay=0.2)
        with use_registry() as registry:
            server = DecisionServer(router=stub,
                                    utility=DeadlineUtility(1.0),
                                    max_queue=2, batch_window=0.0)
            try:
                # One request in flight, then a low- and a mid-priority
                # request fill the bounded queue.
                server.submit(RouteQuery("a", "b", 0.0))
                time.sleep(0.05)
                low = server.submit(RouteQuery("a", "b", 1.0,
                                               priority=0))
                mid = server.submit(RouteQuery("a", "b", 2.0,
                                               priority=1))
                # A high-priority arrival evicts the lowest-priority
                # queued request instead of being dropped itself.
                high = server.submit(RouteQuery("a", "b", 3.0,
                                                priority=5))
                assert low.done()
                result = low.result()
                assert isinstance(result, Overloaded)
                assert result.reason == "shed_priority"
                # An arrival that outranks nothing queued sheds itself.
                equal = server.submit(RouteQuery("a", "b", 4.0,
                                                 priority=1))
                assert equal.result().reason == "queue_full"
                assert mid.result().ok
                assert high.result().ok
            finally:
                server.close()
            counter = registry.get("serve.requests_total")
            assert counter.value(outcome="overloaded",
                                 reason="shed_priority") == 1
            assert counter.value(outcome="overloaded",
                                 reason="queue_full") == 1

    def test_default_priorities_keep_fifo_shedding(self):
        """All-default priorities behave exactly like the pre-priority
        server: arrivals at a full queue shed themselves."""
        stub = StubRouter(delay=0.2)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                max_queue=1, batch_window=0.0)
        try:
            server.submit(RouteQuery("a", "b", 0.0))
            time.sleep(0.05)
            queued = server.submit(RouteQuery("a", "b", 1.0))
            shed = server.submit(RouteQuery("a", "b", 2.0))
            assert shed.result().reason == "queue_full"
            assert queued.result().ok
        finally:
            server.close()

    def test_shedding_disabled_queues_doomed_work(self):
        stub = StubRouter(delay=0.05)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0, shed_doomed=False)
        try:
            server.submit(RouteQuery("a", "b", 0.0)).result()
            server.submit(RouteQuery("a", "b", 1.0))
            future = server.submit(RouteQuery("a", "b", 2.0),
                                   deadline=0.001)
            result = future.result()
            assert result.outcome == "deadline_exceeded"
        finally:
            server.close()

    def test_constructor_validation(self):
        stub = StubRouter()
        with pytest.raises(ValueError, match="at least one"):
            DecisionServer()
        with pytest.raises(ValueError, match="max_queue"):
            DecisionServer(router=stub, max_queue=0)
        with pytest.raises(ValueError, match="batch_window"):
            DecisionServer(router=stub, batch_window=-0.1)
        with pytest.raises(ValueError, match="max_batch"):
            DecisionServer(router=stub, max_batch=0)

    def test_submit_validates_the_deadline(self):
        server = DecisionServer(router=StubRouter(),
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0)
        try:
            with pytest.raises(ValueError, match="deadline"):
                server.submit(RouteQuery("a", "b", 0.0), deadline=0)
        finally:
            server.close()


class TestDeadlines:
    def test_expired_in_queue_resolves_without_service(self):
        stub = StubRouter(delay=0.15)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0, shed_doomed=False)
        try:
            server.submit(RouteQuery("a", "b", 0.0))  # occupies worker
            time.sleep(0.02)
            late = server.submit(RouteQuery("a", "b", 1.0),
                                 deadline=0.01)
            result = late.result()
            assert result.outcome == "deadline_exceeded"
            assert isinstance(result.error, RunDeadlineExceeded)
            assert result.value is None
            # The expired request never reached the backend.
            assert all(size == 1 for size, _ in stub.calls)
        finally:
            server.close()

    def test_deadline_met_serves_normally(self, world):
        server, _, _ = make_server(world)
        with server:
            result = server.route((0, 0), (4, 4),
                                  departure_minute=480.0,
                                  deadline=30.0)
        assert result.ok

    def test_invalid_deadline_raises(self, world):
        server, _, _ = make_server(world)
        with server:
            with pytest.raises(ValueError, match="deadline"):
                server.submit(RouteQuery((0, 0), (4, 4)), deadline=0)


class TestErrors:
    def test_off_map_trajectory_isolated_in_batch(self, world):
        network, _, _, trajectories = world
        from repro.datatypes import GpsPoint, Trajectory

        off_map = Trajectory([GpsPoint(1e6, 1e6, 0.0),
                              GpsPoint(1e6 + 1.0, 1e6 + 1.0, 1.0)])
        server, _, matcher = make_server(world, batch_window=0.05)
        oracle = HmmMapMatcher(network, sigma=0.1, beta=0.5)
        with server:
            server.match(trajectories[0])  # hold dispatcher briefly
            futures = [server.submit(MatchQuery(trajectories[0])),
                       server.submit(MatchQuery(off_map)),
                       server.submit(MatchQuery(trajectories[1]))]
            good0, bad, good1 = [future.result() for future in futures]
        assert good0.ok and good0.value == oracle.match(trajectories[0])
        assert good1.ok and good1.value == oracle.match(trajectories[1])
        assert bad.outcome == "error"
        assert isinstance(bad.error, ValueError)

    def test_unknown_query_type_raises(self, world):
        server, _, _ = make_server(world)
        with server, pytest.raises(TypeError, match="unknown query"):
            server.submit("not a query")

    def test_missing_backend_is_an_error_result(self, world):
        network, _, _, trajectories = world
        with DecisionServer(network=network) as server:
            result = server.match(trajectories[0])
            assert result.outcome == "error"
            assert "no matcher" in str(result.error)
            route = server.route((0, 0), (4, 4))
            assert route.outcome == "error"

    def test_constructor_requires_some_backend(self):
        with pytest.raises(ValueError, match="at least one"):
            DecisionServer()


class TestLifecycle:
    def test_close_drains_queued_requests(self):
        stub = StubRouter(delay=0.05)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0)
        futures = [server.submit(RouteQuery("a", "b", float(i)))
                   for i in range(5)]
        server.close()
        assert all(future.result().ok for future in futures)

    def test_close_without_drain_sheds_queued_requests(self):
        stub = StubRouter(delay=0.2)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                batch_window=0.0)
        server.submit(RouteQuery("a", "b", 0.0))
        time.sleep(0.05)
        queued = [server.submit(RouteQuery("a", "b", float(i)))
                  for i in range(1, 4)]
        server.close(drain=False)
        outcomes = {future.result().outcome for future in queued}
        assert outcomes <= {"ok", "overloaded"}
        assert "overloaded" in outcomes

    def test_submit_after_close_raises(self, world):
        server, _, _ = make_server(world)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(RouteQuery((0, 0), (4, 4)))
        server.close()  # idempotent


class TestMetrics:
    def test_serving_metrics_reconcile(self, world):
        network, _, od_pairs, trajectories = world
        with use_registry() as registry:
            server, _, _ = make_server(world)
            with server:
                n_ok = 0
                for origin, destination in od_pairs:
                    assert server.route(origin, destination,
                                        departure_minute=480.0).ok
                    n_ok += 1
                for trajectory in trajectories[:2]:
                    assert server.match(trajectory).ok
                    n_ok += 1
                assert server.distances((0, 0)).ok
                n_ok += 1
                stats = server.stats()
            snapshot = registry.snapshot()
            counter = registry.get("serve.requests_total")
            assert counter.value(outcome="ok") == n_ok
            assert stats["outcomes"]["ok"] == n_ok
            assert stats["submitted"] == n_ok
            latency = registry.get("serve.latency_seconds")
            assert latency.total_count() == n_ok
            assert registry.get("serve.batch_size").total_count() \
                == stats["batches"]
            assert registry.get("serve.queue_depth").value() == 0
            assert "serve.requests_total" in snapshot

    def test_latency_quantiles_estimable_from_histogram(self, world):
        with use_registry() as registry:
            server, _, _ = make_server(world)
            with server:
                for _ in range(10):
                    server.distances((0, 0))
            histogram = registry.get("serve.latency_seconds")
            p50 = histogram.quantile(0.5, op="distance")
            p99 = histogram.quantile(0.99, op="distance")
            assert 0.0 <= p50 <= p99


class TestLoadGenerator:
    def test_closed_loop_reports_qps_and_outcomes(self, world):
        server, _, _ = make_server(world)

        def make_query(index, iteration):
            kinds = [RouteQuery((0, 0), (4, 4), 480.0),
                     DistanceQuery((2, 2), 3.0)]
            return kinds[(index + iteration) % len(kinds)]

        with server:
            report = closed_loop(server, make_query, n_clients=4,
                                 duration=0.3, deadline=5.0)
        assert report.submitted > 0
        assert report.outcomes.get("ok", 0) == report.submitted
        assert report.qps > 0
        assert report.shed_rate == 0.0
        assert 0.0 <= report.latency_p50 <= report.latency_p99
        payload = report.to_dict()
        assert payload["submitted"] == report.submitted

    def test_closed_loop_records_shedding_under_overload(self):
        stub = StubRouter(delay=0.05)
        server = DecisionServer(router=stub,
                                utility=DeadlineUtility(1.0),
                                max_queue=1, batch_window=0.0)

        def make_query(index, iteration):
            return RouteQuery("a", "b", float(iteration))

        with server:
            report = closed_loop(server, make_query, n_clients=6,
                                 duration=0.4)
        assert report.outcomes.get("overloaded", 0) > 0
        assert report.shed_rate > 0.0

    def test_result_dataclass_defaults(self):
        result = ServeResult()
        assert result.ok and result.outcome == "ok"
        shed = Overloaded(reason="doomed")
        assert not shed.ok and shed.outcome == "overloaded"
