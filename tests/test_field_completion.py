"""Tests for spatio-temporal field completion (the buoy scenario [2])."""

import numpy as np
import pytest

from repro.datasets import sparse_buoy_observations, wave_field_dataset
from repro.governance.imputation import complete_field


@pytest.fixture(scope="module")
def field():
    sequence = wave_field_dataset(n_frames=30, grid=(12, 12),
                                  rng=np.random.default_rng(0))
    observed, buoys = sparse_buoy_observations(
        sequence, 0.15, rng=np.random.default_rng(1))
    return sequence, observed, buoys


class TestCompleteField:
    def test_output_complete_and_shaped(self, field):
        sequence, observed, _ = field
        completed = complete_field(sequence, observed)
        assert completed.shape == observed.shape
        assert not np.isnan(completed).any()

    def test_observed_cells_pass_through(self, field):
        sequence, observed, _ = field
        completed = complete_field(sequence, observed)
        mask = ~np.isnan(observed)
        assert np.allclose(completed[mask], observed[mask])

    def test_beats_global_mean(self, field):
        sequence, observed, _ = field
        truth = sequence.frames[..., 0]
        hidden = np.isnan(observed)
        completed = complete_field(sequence, observed, bandwidth=1.5)
        model_error = np.abs(completed[hidden] - truth[hidden]).mean()
        mean_error = np.abs(truth[~hidden].mean()
                            - truth[hidden]).mean()
        assert model_error < 0.8 * mean_error

    def test_more_buoys_help(self):
        sequence = wave_field_dataset(n_frames=20, grid=(12, 12),
                                      rng=np.random.default_rng(2))
        truth = sequence.frames[..., 0]
        errors = []
        for fraction in (0.05, 0.3):
            observed, _ = sparse_buoy_observations(
                sequence, fraction, rng=np.random.default_rng(3))
            hidden = np.isnan(observed)
            completed = complete_field(sequence, observed,
                                       bandwidth=1.5)
            errors.append(np.abs(completed[hidden]
                                 - truth[hidden]).mean())
        assert errors[1] < errors[0]

    def test_narrow_bandwidth_sharper_near_buoys(self, field):
        sequence, observed, buoys = field
        truth = sequence.frames[..., 0]
        # Cells adjacent to a buoy should be very accurate.
        adjacent = np.zeros_like(buoys)
        rows, cols = np.nonzero(buoys)
        for r, c in zip(rows, cols):
            if r + 1 < buoys.shape[0]:
                adjacent[r + 1, c] = True
        adjacent &= ~buoys
        if adjacent.any():
            completed = complete_field(sequence, observed,
                                       bandwidth=1.5)
            near_error = np.abs(
                completed[:, adjacent] - truth[:, adjacent]).mean()
            assert near_error < truth.std()

    def test_shape_validation(self, field):
        sequence, observed, _ = field
        with pytest.raises(ValueError):
            complete_field(sequence, observed[:, :4, :4])

    def test_requires_observations(self, field):
        sequence, observed, _ = field
        with pytest.raises(ValueError):
            complete_field(sequence, np.full_like(observed, np.nan))

    def test_no_temporal_smoothing_still_works(self, field):
        sequence, observed, _ = field
        completed = complete_field(sequence, observed,
                                   temporal_smoothing=0.0)
        assert not np.isnan(completed).any()
