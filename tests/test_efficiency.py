"""Tests for quantization, QCore calibration, condensation, distillation."""

import numpy as np
import pytest

from repro.datasets import seasonal_series
from repro.datasets.classification import waveform_classification_dataset
from repro.analytics.classification import RocketClassifier
from repro.analytics.efficiency import (
    DistilledForecaster,
    QuantizedLinear,
    TimeSeriesCondenser,
    dequantize_array,
    model_size_bytes,
    quantize_array,
)
from repro.analytics.forecasting import (
    ARForecaster,
    EnsembleForecaster,
    HoltWintersForecaster,
    SeasonalNaiveForecaster,
)
from repro.analytics.metrics import mae


class TestQuantization:
    def test_roundtrip_error_bounded_by_scale(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(30, 4))
        for bits in (16, 8, 4, 2):
            codes, scale = quantize_array(values, bits)
            restored = dequantize_array(codes, scale)
            assert np.abs(restored - values).max() <= scale / 2 + 1e-12

    def test_error_shrinks_with_bits(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100)
        errors = []
        for bits in (2, 4, 8, 16):
            codes, scale = quantize_array(values, bits)
            errors.append(np.abs(codes * scale - values).mean())
        assert errors == sorted(errors, reverse=True)

    def test_zero_array(self):
        codes, scale = quantize_array(np.zeros(5), 8)
        assert np.all(codes == 0)
        assert scale == 1.0

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            quantize_array([1.0], 1)
        with pytest.raises(ValueError):
            quantize_array([1.0], 64)

    def test_model_size_bytes(self):
        assert model_size_bytes(100, 8) == 104
        assert model_size_bytes(100, 4) == 54


class TestQuantizedLinear:
    def test_predictions_close_to_float(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(10, 3))
        intercept = rng.normal(size=3)
        layer = QuantizedLinear(weights, intercept, 8)
        inputs = rng.normal(size=(50, 10))
        exact = inputs @ weights + intercept
        assert np.abs(layer.predict(inputs) - exact).max() < 0.1

    def test_size_scales_with_bits(self):
        weights = np.ones((100, 2))
        small = QuantizedLinear(weights, np.zeros(2), 4).size_bytes
        large = QuantizedLinear(weights, np.zeros(2), 16).size_bytes
        assert small < large

    def test_calibration_fixes_drift(self):
        """QCore's claim [48]: adjusting scales alone recovers accuracy
        after a distribution shift, without touching integer codes."""
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(8, 2))
        layer = QuantizedLinear(weights, np.zeros(2), 8)
        codes_before = layer.codes.copy()
        inputs = rng.normal(size=(300, 8))
        drifted = inputs @ (1.4 * weights) + 0.3
        error_before = np.abs(layer.predict(inputs) - drifted).mean()
        layer.calibrate(inputs, drifted)
        error_after = np.abs(layer.predict(inputs) - drifted).mean()
        assert error_after < 0.2 * error_before
        assert np.array_equal(layer.codes, codes_before)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantizedLinear(np.ones((3, 2)), np.zeros(5), 8)
        layer = QuantizedLinear(np.ones((3, 2)), np.zeros(2), 8)
        with pytest.raises(ValueError):
            layer.calibrate(np.zeros((4, 3)), np.zeros((5, 2)))


class TestCondensation:
    @pytest.fixture(scope="class")
    def labeled(self):
        X, y = waveform_classification_dataset(
            60, 96, 3, rng=np.random.default_rng(4))
        Xte, yte = waveform_classification_dataset(
            25, 96, 3, rng=np.random.default_rng(5))
        return X, y, Xte, yte

    def test_condensed_shape(self, labeled):
        X, y, _, _ = labeled
        condenser = TimeSeriesCondenser(4, rng=np.random.default_rng(6))
        Xc, yc = condenser.fit_labeled(X, y)
        assert Xc.shape == (12, 96)
        assert sorted(np.unique(yc)) == sorted(np.unique(y))

    def test_condensed_trains_competitive_classifier(self, labeled):
        """E17's claim: the condensed set preserves training utility far
        beyond its size."""
        X, y, Xte, yte = labeled
        condenser = TimeSeriesCondenser(5, rng=np.random.default_rng(7))
        Xc, yc = condenser.fit_labeled(X, y)
        full = RocketClassifier(
            150, rng=np.random.default_rng(8)).fit(X, y).score(Xte, yte)
        condensed = RocketClassifier(
            150, rng=np.random.default_rng(8)).fit(Xc, yc).score(Xte, yte)
        assert condensed > 0.75
        assert condensed >= full - 0.15

    def test_two_fold_beats_time_only(self, labeled):
        X, y, Xte, yte = labeled
        scores = {}
        for weight in (0.0, 1.0):
            condenser = TimeSeriesCondenser(
                5, frequency_weight=weight, rng=np.random.default_rng(9))
            Xc, yc = condenser.fit_labeled(X, y)
            scores[weight] = RocketClassifier(
                150, rng=np.random.default_rng(10)).fit(
                    Xc, yc).score(Xte, yte)
        assert scores[1.0] >= scores[0.0] - 0.05

    def test_unlabeled_fit(self):
        rng = np.random.default_rng(11)
        windows = rng.normal(size=(100, 32))
        condenser = TimeSeriesCondenser(8, rng=rng).fit(windows)
        assert condenser.condensed.shape == (8, 32)
        assert condenser.compression_ratio(100) == pytest.approx(12.5)

    def test_too_small_dataset(self):
        with pytest.raises(ValueError):
            TimeSeriesCondenser(10).fit(np.zeros((5, 8)))


class TestDistillation:
    def test_student_tracks_teacher(self):
        series = seasonal_series(900, rng=np.random.default_rng(12))
        train, test = series.split(0.95)
        teacher = EnsembleForecaster([
            SeasonalNaiveForecaster(96),
            ARForecaster(12, seasonal_period=96),
            HoltWintersForecaster(96),
        ])
        student = DistilledForecaster(teacher, n_lags=6).fit(train)
        prediction = student.predict(len(test))
        assert prediction.shape == (len(test), 1)
        assert mae(test.values, prediction) < 3 * test.values.std()

    def test_quantized_student_reports_size(self):
        series = seasonal_series(600, rng=np.random.default_rng(13))
        student = DistilledForecaster(
            SeasonalNaiveForecaster(96), n_lags=4, bits=8).fit(series)
        float_student = DistilledForecaster(
            SeasonalNaiveForecaster(96), n_lags=4).fit(series)
        assert student.size_bytes < float_student.size_bytes

    def test_short_series_rejected(self):
        from repro import TimeSeries

        with pytest.raises(ValueError):
            DistilledForecaster(SeasonalNaiveForecaster(4),
                                n_lags=4).fit(TimeSeries(np.zeros(6)))
