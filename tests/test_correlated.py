"""Tests for repro.datatypes.correlated."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorrelatedTimeSeries


def ring_adjacency(n):
    adjacency = np.zeros((n, n))
    for i in range(n):
        adjacency[i, (i + 1) % n] = adjacency[(i + 1) % n, i] = 1.0
    return adjacency


def make_cts(m=30, n=5, seed=0):
    rng = np.random.default_rng(seed)
    return CorrelatedTimeSeries(rng.normal(size=(m, n)),
                                adjacency=ring_adjacency(n))


class TestConstruction:
    def test_shape_and_counts(self):
        cts = make_cts(m=30, n=5)
        assert len(cts) == 30
        assert cts.n_sensors == 5
        assert cts.n_edges == 5  # ring has n edges

    def test_default_adjacency_is_empty(self):
        cts = CorrelatedTimeSeries(np.zeros((4, 3)))
        assert cts.n_edges == 0

    def test_rejects_asymmetric_adjacency(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = 1.0
        with pytest.raises(ValueError):
            CorrelatedTimeSeries(np.zeros((4, 3)), adjacency=adjacency)

    def test_rejects_negative_weights(self):
        adjacency = ring_adjacency(3) * -1
        with pytest.raises(ValueError):
            CorrelatedTimeSeries(np.zeros((4, 3)), adjacency=adjacency)

    def test_rejects_wrong_adjacency_shape(self):
        with pytest.raises(ValueError):
            CorrelatedTimeSeries(np.zeros((4, 3)),
                                 adjacency=np.zeros((2, 2)))

    def test_diagonal_zeroed(self):
        adjacency = ring_adjacency(3)
        np.fill_diagonal(adjacency, 5.0)
        cts = CorrelatedTimeSeries(np.zeros((4, 3)), adjacency=adjacency)
        assert np.all(np.diag(cts.adjacency) == 0)

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError):
            CorrelatedTimeSeries(np.zeros((4, 3)), names=["a", "b"])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            CorrelatedTimeSeries(np.zeros(4))


class TestAccessors:
    def test_sensor_extraction(self):
        cts = make_cts()
        sensor = cts.sensor(2)
        assert sensor.is_univariate
        assert sensor.name == "sensor_2"
        assert np.allclose(sensor.values[:, 0], cts.values[:, 2])

    def test_neighbors_on_ring(self):
        cts = make_cts(n=5)
        assert set(cts.neighbors(0)) == {1, 4}

    def test_neighbors_out_of_range(self):
        with pytest.raises(IndexError):
            make_cts(n=5).neighbors(9)

    def test_as_timeseries_shape(self):
        cts = make_cts(m=10, n=4)
        series = cts.as_timeseries()
        assert series.values.shape == (10, 4)


class TestGraph:
    def test_normalized_adjacency_row_sums(self):
        cts = make_cts(n=6)
        normalized = cts.normalized_adjacency()
        # Ring with unit weights: every row sums to 1 after symmetric
        # normalization (degree 2 everywhere).
        assert np.allclose(normalized.sum(axis=1), 1.0)

    def test_normalized_adjacency_isolated_sensor(self):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        cts = CorrelatedTimeSeries(np.zeros((4, 3)), adjacency=adjacency)
        normalized = cts.normalized_adjacency()
        assert np.all(normalized[2] == 0)

    def test_correlation_graph_finds_correlated_pair(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=200)
        values = np.column_stack([
            base,
            base + 0.1 * rng.normal(size=200),
            rng.normal(size=200),
        ])
        adjacency = CorrelatedTimeSeries.correlation_graph(values, 0.8)
        assert adjacency[0, 1] > 0.8
        assert adjacency[0, 2] == 0.0

    def test_correlation_graph_symmetric(self):
        rng = np.random.default_rng(1)
        adjacency = CorrelatedTimeSeries.correlation_graph(
            rng.normal(size=(100, 4)), 0.1
        )
        assert np.allclose(adjacency, adjacency.T)


class TestTransformations:
    def test_slice_keeps_graph(self):
        cts = make_cts()
        part = cts.slice(5, 15)
        assert len(part) == 10
        assert np.allclose(part.adjacency, cts.adjacency)

    def test_split_partition(self):
        cts = make_cts(m=20)
        head, tail = cts.split(0.75)
        assert len(head) == 15 and len(tail) == 5
        assert np.allclose(np.vstack([head.values, tail.values]), cts.values)

    def test_with_values_keeps_names(self):
        cts = make_cts(m=10, n=3)
        replaced = cts.with_values(np.zeros((10, 3)))
        assert replaced.names == cts.names

    def test_corrupt_preserves_graph(self):
        rng = np.random.default_rng(0)
        cts = make_cts(m=100)
        corrupted = cts.corrupt(0.2, rng)
        assert np.allclose(corrupted.adjacency, cts.adjacency)
        assert corrupted.missing_fraction() == pytest.approx(0.2, abs=0.06)


@settings(deadline=None, max_examples=20)
@given(n=st.integers(min_value=2, max_value=8), seed=st.integers(0, 50))
def test_normalized_adjacency_spectral_radius(n, seed):
    """Symmetric normalization keeps the spectral radius at most 1,
    the contraction property graph smoothing relies on."""
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0, 1, size=(n, n))
    adjacency = np.triu(weights, 1)
    adjacency = adjacency + adjacency.T
    cts = CorrelatedTimeSeries(np.zeros((3, n)), adjacency=adjacency)
    eigenvalues = np.linalg.eigvalsh(cts.normalized_adjacency())
    assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-9
