"""Tests for repro.datatypes.roadnetwork."""

import math

import numpy as np
import pytest

from repro import RoadNetwork


@pytest.fixture
def grid():
    return RoadNetwork.grid(4, 4)


class TestGenerators:
    def test_grid_counts(self, grid):
        assert grid.n_nodes == 16
        # 4x4 grid: 2 * (3*4 + 4*3) = 48 directed edges
        assert grid.n_edges == 48

    def test_grid_positions(self, grid):
        assert grid.position((0, 0)) == (0.0, 0.0)
        assert grid.position((2, 3)) == (3.0, 2.0)

    def test_grid_one_way(self):
        net = RoadNetwork.grid(3, 3, bidirectional=False)
        assert net.has_edge((0, 0), (0, 1))
        assert not net.has_edge((0, 1), (0, 0))

    def test_grid_too_small(self):
        with pytest.raises(ValueError):
            RoadNetwork.grid(1, 5)

    def test_random_geometric_strongly_connected(self):
        rng = np.random.default_rng(0)
        net = RoadNetwork.random_geometric(60, 2.5, rng=rng)
        assert net.n_nodes >= 2
        nodes = net.nodes()
        # every retained pair is mutually reachable
        path = net.shortest_path(nodes[0], nodes[-1])
        back = net.shortest_path(nodes[-1], nodes[0])
        assert path[0] == nodes[0] and back[-1] == nodes[0]

    def test_random_geometric_too_sparse(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RoadNetwork.random_geometric(20, 0.001, rng=rng)


class TestValidation:
    def test_rejects_missing_pos(self):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_node(0)
        with pytest.raises(ValueError):
            RoadNetwork(graph)

    def test_rejects_nonpositive_length(self):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_node(0, pos=(0, 0))
        graph.add_node(1, pos=(1, 0))
        graph.add_edge(0, 1, length=0.0)
        with pytest.raises(ValueError):
            RoadNetwork(graph)


class TestGeometry:
    def test_project_point_midpoint(self, grid):
        distance, fraction = grid.project_point((0.5, 0.3), (0, 0), (0, 1))
        assert distance == pytest.approx(0.3)
        assert fraction == pytest.approx(0.5)

    def test_project_point_clamps(self, grid):
        _, fraction = grid.project_point((-1.0, 0.0), (0, 0), (0, 1))
        assert fraction == 0.0

    def test_point_on_edge(self, grid):
        x, y = grid.point_on_edge((0, 0), (0, 1), 0.25)
        assert (x, y) == (0.25, 0.0)

    def test_candidate_edges_sorted(self, grid):
        candidates = grid.candidate_edges((0.5, 0.1), radius=0.6)
        assert candidates
        distances = [c[2] for c in candidates]
        assert distances == sorted(distances)
        u, v, _, _ = candidates[0]
        assert {u, v} == {(0, 0), (0, 1)}

    def test_nearest_node(self, grid):
        assert grid.nearest_node((2.9, 2.1)) == (2, 3)


class TestPaths:
    def test_shortest_path_manhattan(self, grid):
        path = grid.shortest_path((0, 0), (2, 2))
        assert grid.path_length(path) == pytest.approx(4.0)

    def test_k_shortest_paths_distinct(self, grid):
        paths = grid.k_shortest_paths((0, 0), (2, 2), 3)
        assert len(paths) == 3
        assert len({tuple(p) for p in paths}) == 3
        lengths = [grid.path_length(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_k_invalid(self, grid):
        with pytest.raises(ValueError):
            grid.k_shortest_paths((0, 0), (1, 1), 0)

    def test_path_edges_validates(self, grid):
        with pytest.raises(ValueError):
            grid.path_edges([(0, 0), (2, 2)])

    def test_path_edges_short(self, grid):
        with pytest.raises(ValueError):
            grid.path_edges([(0, 0)])

    def test_route_distance_identity(self, grid):
        path = grid.shortest_path((0, 0), (3, 3))
        assert grid.route_distance(path, path) == 0.0

    def test_route_distance_disjoint(self, grid):
        path_a = [(0, 0), (0, 1), (0, 2)]
        path_b = [(3, 0), (3, 1), (3, 2)]
        assert grid.route_distance(path_a, path_b) == 1.0

    def test_dijkstra_all_matches_networkx(self, grid):
        distances = grid.dijkstra_all((0, 0))
        for node in grid.nodes():
            expected = grid.shortest_path_length((0, 0), node)
            assert distances[node] == pytest.approx(expected)

    def test_edge_attributes_roundtrip(self, grid):
        grid.set_edge_attribute((0, 0), (0, 1), "speed", 13.0)
        assert grid.edge_attribute((0, 0), (0, 1), "speed") == 13.0
        assert grid.edge_attribute((0, 0), (0, 1), "missing", 7) == 7

    def test_edge_attribute_missing_edge(self, grid):
        with pytest.raises(KeyError):
            grid.set_edge_attribute((0, 0), (3, 3), "x", 1)


class TestConsistency:
    def test_edge_lengths_match_positions(self, grid):
        for u, v in grid.edges():
            (x1, y1), (x2, y2) = grid.edge_endpoints(u, v)
            assert grid.edge_length(u, v) == pytest.approx(
                math.hypot(x2 - x1, y2 - y1)
            )
