"""The pluggable executor backends: equivalence, shared memory,
pre-flight, determinism and cross-process telemetry.

The engine's core claim after the executor refactor is *backend
independence*: for a contract-correct pipeline, Serial, Thread and
Process backends produce identical final state (byte-identical by
content fingerprint), identical RunReport statuses, and identical
``engine.*`` outcome series — while the process backend additionally
ships large ndarrays zero-copy through shared memory and folds
worker-side metrics back into the parent registry.
"""

import os
import pickle
import threading

import numpy as np
import pytest

from repro import DecisionPipeline, StageCache, StageFailure
from repro.core import RunDeadlineExceeded
from repro.core.cache import fingerprint
from repro.core.dag import Frontier
from repro.core.events import StageEvent
from repro.core.executors import (
    SHARE_MIN_BYTES,
    Executor,
    ExecutorError,
    ProcessExecutor,
    RemoteStageError,
    SerialExecutor,
    ThreadExecutor,
    _shareable,
    default_process_executor,
    resolve_executor,
)
from repro.core.faults import FaultInjector, attempt_jitter, attempt_seed
from repro.core.stage import ContractViolation
from repro.observability.metrics import MetricsRegistry, use_registry

BACKENDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def process_executor():
    """One shared worker pool for the whole module (pool start-up is
    the expensive part; the tests exercise semantics, not cold start)."""
    executor = ProcessExecutor(max_workers=2)
    yield executor
    executor.close()


def backend_executor(name, process_executor):
    if name == "process":
        return process_executor
    return name


# -- module-level stage functions (picklable by reference) -------------------

N = 4000  # 4000 float64 = 32 KB < SHARE_MIN_BYTES; see LARGE below
LARGE = 16384  # 128 KB >= SHARE_MIN_BYTES


def s_load(view):
    view["x"] = np.arange(N, dtype=np.float64)
    return "loaded"


def s_load_large(view):
    view["x"] = np.arange(LARGE, dtype=np.float64)
    return "loaded"


def s_square(view):
    view["y"] = view["x"] ** 2
    return "squared", {"n": int(view["y"].size)}


def s_offset(view):
    view["z"] = view["x"] + 1.0
    return "offset"


def s_decide(view):
    view["total"] = float(view["y"].sum() + view["z"].sum())
    return "decided"


def s_delete(view):
    del view["scratch"]
    view["kept"] = True
    return "cleaned"


def s_ok(view):
    view["ok"] = True
    return "fine"


def s_fallback(view):
    view["ok"] = "fallback"
    return "held"


def s_rogue_write(view):
    view["undeclared"] = 1
    return "never"


def s_unpicklable_output(view):
    view["bad"] = threading.Lock()
    return "wrote a lock"


def s_raise_value_error(view):
    _ = view["x"]
    raise ValueError("deliberate remote failure")


def build_diamond(loader=s_load):
    """load -> (square, offset) -> decide: one fan-out, one join."""
    p = DecisionPipeline("executors diamond")
    p.add_data("load", loader, reads=(), writes=("x",))
    p.add_analytics("square", s_square, reads=("x",), writes=("y",))
    p.add_analytics("offset", s_offset, reads=("x",), writes=("z",))
    p.add_decision("decide", s_decide, reads=("y", "z"),
                   writes=("total",))
    return p


# -- resolution --------------------------------------------------------------


class TestResolveExecutor:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(resolve_executor(), ThreadExecutor)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert isinstance(resolve_executor(), SerialExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert isinstance(resolve_executor(), ProcessExecutor)

    def test_names(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("Process"), ProcessExecutor)

    def test_process_name_is_shared_singleton(self):
        assert (resolve_executor("process")
                is default_process_executor())

    def test_instance_passes_through(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_executor(42)

    def test_executor_kinds(self):
        assert SerialExecutor.kind == "serial"
        assert ThreadExecutor.kind == "thread"
        assert ProcessExecutor.kind == "process"
        assert not SerialExecutor.concurrent
        assert ThreadExecutor.concurrent
        assert Executor.concurrent


# -- backend equivalence -----------------------------------------------------


class TestBackendEquivalence:
    def run_all(self, build, process_executor, **kwargs):
        results = {}
        for backend in BACKENDS:
            with use_registry() as registry:
                state, report = build().run(
                    executor=backend_executor(backend,
                                              process_executor),
                    run_id="equiv", **kwargs)
            results[backend] = (state, report, registry)
        return results

    def test_identical_state_and_statuses(self, process_executor):
        results = self.run_all(build_diamond, process_executor)
        prints = {b: fingerprint(state)
                  for b, (state, _, _) in results.items()}
        assert len(set(prints.values())) == 1
        maps = {b: report.status_map()
                for b, (_, report, _) in results.items()}
        assert maps["serial"] == maps["thread"] == maps["process"]
        assert maps["serial"] == {"load": "ok", "square": "ok",
                                  "offset": "ok", "decide": "ok"}

    def test_identical_outcome_series(self, process_executor):
        results = self.run_all(build_diamond, process_executor)
        series = {}
        for backend, (_, _, registry) in results.items():
            snap = registry.snapshot()
            series[backend] = snap["engine.stage_outcomes_total"][
                "series"]
        assert (series["serial"] == series["thread"]
                == series["process"])

    def test_deletions_cross_the_boundary(self, process_executor):
        def build():
            p = DecisionPipeline("delete")
            p.add_data("clean", s_delete,
                       reads=("scratch",), writes=("scratch", "kept"))
            return p

        for backend in BACKENDS:
            state, report = build().run(
                {"scratch": "temp"},
                executor=backend_executor(backend, process_executor))
            assert "scratch" not in state
            assert state["kept"] is True
            assert report.status_map() == {"clean": "ok"}

    def test_details_and_summary_survive_the_boundary(
            self, process_executor):
        state, report = build_diamond().run(executor=process_executor)
        record = report.record("square")
        assert record.summary == "squared"
        assert record.details == {"n": N}


# -- shared memory -----------------------------------------------------------


class TestSharedMemory:
    def test_shareable_predicate(self):
        big = np.zeros(LARGE, dtype=np.float64)
        assert _shareable(big)
        assert not _shareable(np.zeros(8))  # too small
        assert not _shareable(big[::2])  # not C-contiguous
        assert not _shareable(np.array([object()], dtype=object))
        assert not _shareable([1.0] * LARGE)  # not an ndarray
        assert big.nbytes >= SHARE_MIN_BYTES

    def test_large_arrays_go_through_shared_memory(
            self, process_executor):
        with use_registry() as registry:
            state, _ = build_diamond(s_load_large).run(
                executor=process_executor)
        snap = registry.snapshot()
        shared = snap["engine.executor_shm_bytes_total"]["series"]
        assert shared and shared[0]["value"] >= LARGE * 8
        expected = np.arange(LARGE, dtype=np.float64)
        assert state["total"] == pytest.approx(
            float((expected ** 2).sum() + (expected + 1.0).sum()))

    def test_small_arrays_ship_by_value(self, process_executor):
        with use_registry() as registry:
            build_diamond(s_load).run(executor=process_executor)
        snap = registry.snapshot()
        # The family registers at session start, but nothing was shared.
        assert snap["engine.executor_shm_bytes_total"]["series"] == []

    def test_worker_arena_is_cleaned_up(self, process_executor):
        from multiprocessing import shared_memory

        session = process_executor.begin_run(
            build_diamond()._ordered_stages(), metrics=None)
        arena = session._arena
        handle = arena.share("k", np.zeros(LARGE))
        session.finish()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)


# -- pre-flight --------------------------------------------------------------


class TestPreflight:
    def build_lambda_pipeline(self):
        p = DecisionPipeline("preflight")
        p.add_data("lam",  # noqa: RC022
                   lambda s: s.__setitem__("w", 1) or "ok",
                   reads=(), writes=("w",))
        p.add_analytics("fine", s_ok, reads=(), writes=("ok",))
        return p

    def test_unpicklable_stage_falls_back_to_parent(self):
        executor = ProcessExecutor(max_workers=1)
        try:
            with use_registry() as registry:
                state, report = self.build_lambda_pipeline().run(
                    executor=executor)
        finally:
            executor.close()
        assert state["w"] == 1 and state["ok"] is True
        assert set(report.status_map().values()) == {"ok"}
        snap = registry.snapshot()
        local = snap["engine.executor_local_stages_total"]["series"]
        assert local == [{"labels": {"reason": "unpicklable"},
                          "value": 1.0}]

    def test_on_unpicklable_error_names_the_stage(self):
        executor = ProcessExecutor(max_workers=1,
                                   on_unpicklable="error")
        try:
            with pytest.raises(ExecutorError, match="'lam'"):
                self.build_lambda_pipeline().run(executor=executor)
        finally:
            executor.close()

    def test_wildcard_contract_runs_in_parent(self, process_executor):
        p = DecisionPipeline("wildcard")
        p.add_data("legacy", s_ok)  # no declared contract
        with use_registry() as registry:
            state, _ = p.run(executor=process_executor)
        assert state["ok"] is True
        snap = registry.snapshot()
        local = snap["engine.executor_local_stages_total"]["series"]
        assert local == [{"labels": {"reason": "wildcard"},
                          "value": 1.0}]

    def test_invalid_on_unpicklable_rejected(self):
        with pytest.raises(ValueError):
            ProcessExecutor(on_unpicklable="explode")

    def test_stage_obstacle_mentions_rc022(self):
        executor = ProcessExecutor(max_workers=1)
        stage = self.build_lambda_pipeline()._ordered_stages()[0]
        obstacle = executor.stage_obstacle(stage)
        assert "RC022" in obstacle
        executor.close()


# -- remote failure semantics ------------------------------------------------


class TestRemoteFailures:
    def test_remote_exception_reaches_the_policy(
            self, process_executor):
        p = DecisionPipeline("remote fail")
        p.add_data("load", s_load, reads=(), writes=("x",))
        p.add_analytics("boom", s_raise_value_error,
                        reads=("x",), writes=())
        with pytest.raises(StageFailure) as exc_info:
            p.run(executor=process_executor)
        cause = exc_info.value.__cause__
        assert isinstance(cause, RemoteStageError)
        assert cause.original_type == "ValueError"
        assert "deliberate remote failure" in str(cause)
        assert "ValueError" in (cause.remote_traceback or "")

    def test_remote_contract_violation_is_never_absorbed(
            self, process_executor):
        p = DecisionPipeline("remote violation")
        p.add_data("rogue", s_rogue_write,  # noqa: RC002
                   reads=(), writes=("declared",),
                   on_error="skip", retries=3)
        with use_registry() as registry:
            with pytest.raises(ContractViolation):
                p.run(executor=process_executor)
        # The worker-side violation counter crossed the boundary into
        # the parent registry via the metrics-delta merge.
        snap = registry.snapshot()
        series = snap["engine.contract_violations_total"]["series"]
        assert series == [{"labels": {"side": "write",
                                      "stage": "rogue"},
                           "value": 1.0}]

    def test_unpicklable_stage_output_is_a_clear_error(
            self, process_executor):
        p = DecisionPipeline("bad output")
        p.add_data("locksmith", s_unpicklable_output,
                   reads=(), writes=("bad",))
        with pytest.raises(StageFailure) as exc_info:
            p.run(executor=process_executor)
        cause = exc_info.value.__cause__
        assert isinstance(cause, ExecutorError)
        assert "cannot cross the process boundary" in str(cause)
        assert "'bad'" in str(cause)

    def test_broken_pool_raises_executor_error(self):
        executor = ProcessExecutor(max_workers=1)
        try:
            # Prime the lazy pool, then kill its worker.
            p = DecisionPipeline("prime")
            p.add_data("ok", s_ok, reads=(), writes=("ok",))
            p.run(executor=executor)
            for proc in executor._pool._processes.values():
                proc.terminate()
            with pytest.raises((StageFailure, ExecutorError)):
                p.run(executor=executor)
        finally:
            executor.close()


# -- failure-policy matrix across backends -----------------------------------


def scenario_fail():
    faults = FaultInjector().fail("work")
    p = DecisionPipeline("policy fail")
    p.add_data("work", s_ok, reads=(), writes=("ok",))
    return p, faults, StageFailure, {"work": "failed"}


def scenario_skip():
    faults = FaultInjector().fail("work")
    p = DecisionPipeline("policy skip")
    p.add_data("work", s_ok, reads=(), writes=("ok",),
               on_error="skip")
    return p, faults, None, {"work": "skipped"}


def scenario_fallback():
    faults = FaultInjector().fail("work")
    p = DecisionPipeline("policy fallback")
    p.add_data("work", s_ok, reads=(), writes=("ok",),
               on_error="fallback", fallback=s_fallback)
    return p, faults, None, {"work": "fallback"}


def scenario_retry():
    faults = FaultInjector().fail("work", times=2)
    p = DecisionPipeline("policy retry")
    p.add_data("work", s_ok, reads=(), writes=("ok",),
               retries=2, backoff=0.0)
    return p, faults, None, {"work": "ok"}


def scenario_timeout():
    faults = FaultInjector().timeout("work")
    p = DecisionPipeline("policy timeout")
    p.add_data("work", s_ok, reads=(), writes=("ok",))
    return p, faults, StageFailure, {"work": "timed_out"}


SCENARIOS = {
    "fail": scenario_fail,
    "skip": scenario_skip,
    "fallback": scenario_fallback,
    "retry": scenario_retry,
    "timeout": scenario_timeout,
}


class TestFailurePolicyMatrix:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_policy_is_backend_independent(self, name,
                                           process_executor):
        outcomes = {}
        for backend in BACKENDS:
            pipeline, faults, raises, expected = SCENARIOS[name]()
            with use_registry() as registry:
                if raises is None:
                    _, report = pipeline.run(
                        tracer=faults, run_id="matrix",
                        executor=backend_executor(backend,
                                                  process_executor))
                else:
                    with pytest.raises(raises) as exc_info:
                        pipeline.run(
                            tracer=faults, run_id="matrix",
                            executor=backend_executor(
                                backend, process_executor))
                    report = exc_info.value.report
            snap = registry.snapshot()
            outcomes[backend] = (
                report.status_map(),
                snap["engine.stage_outcomes_total"]["series"],
                snap["engine.stage_attempts_total"]["series"],
            )
            assert report.status_map() == expected, backend
        assert (outcomes["serial"] == outcomes["thread"]
                == outcomes["process"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadline_cancels_on_every_backend(self, backend,
                                               process_executor):
        faults = FaultInjector().delay("slow", 0.6)
        p = DecisionPipeline("policy deadline")
        p.add_data("prep", s_load, reads=(), writes=("x",))
        p.add_analytics("slow", s_square, reads=("x",),
                        writes=("y",))
        p.add_decision("after", s_offset, reads=("y",),
                       writes=("z",))
        with pytest.raises(RunDeadlineExceeded) as exc_info:
            p.run(tracer=faults, deadline=0.25,
                  executor=backend_executor(backend,
                                            process_executor))
        report = exc_info.value.report
        statuses = report.status_map()
        assert statuses["prep"] == "ok"
        assert statuses["slow"] == "cancelled"
        assert statuses["after"] == "cancelled"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stage_timeout_enforced_remotely(self, backend,
                                             process_executor):
        faults = FaultInjector().delay("slow", 0.4)
        p = DecisionPipeline("stage timeout")
        p.add_data("prep", s_load, reads=(), writes=("x",))
        p.add_analytics("slow", s_square, reads=("x",),
                        writes=("y",), timeout=0.1, on_error="skip")
        state, report = p.run(tracer=faults,
                              executor=backend_executor(
                                  backend, process_executor))
        assert report.status_map() == {"prep": "ok",
                                       "slow": "skipped"}
        assert "y" not in state  # the timed-out delta never committed


# -- determinism -------------------------------------------------------------


class TestDeterministicJitter:
    def test_seed_is_stable_and_process_independent(self):
        a = attempt_seed("run-1", "impute", 2)
        assert a == attempt_seed("run-1", "impute", 2)
        # Known-answer: sha256 is stable everywhere, so this value
        # pins cross-process agreement (hash() would be salted).
        import hashlib

        token = "run-1\x1fimpute\x1f2".encode()
        expected = int.from_bytes(
            hashlib.sha256(token).digest()[:8], "big")
        assert a == expected

    def test_seed_distinguishes_every_tuple_component(self):
        base = attempt_seed("r", "s", 1)
        assert base != attempt_seed("r2", "s", 1)
        assert base != attempt_seed("r", "s2", 1)
        assert base != attempt_seed("r", "s", 2)

    def test_jitter_range_and_determinism(self):
        values = [attempt_jitter("r", "s", a) for a in range(50)]
        assert all(0.5 <= v < 1.0 for v in values)
        assert values == [attempt_jitter("r", "s", a)
                          for a in range(50)]
        assert len(set(values)) > 40  # actually jittered

    def test_injector_captures_run_id(self):
        faults = FaultInjector()
        p = DecisionPipeline("capture")
        p.add_data("ok", s_ok, reads=(), writes=("ok",))
        p.run(tracer=faults, run_id="abc123")
        assert faults.run_id == "abc123"

    def test_jittered_delay_is_deterministic(self, monkeypatch):
        import repro.core.faults as faults_mod

        sleeps = []
        monkeypatch.setattr(faults_mod.time, "sleep", sleeps.append)
        for _ in range(2):
            faults = FaultInjector().delay("work", 0.01, jitter=0.05)
            p = DecisionPipeline("jitter")
            p.add_data("work", s_ok, reads=(), writes=("ok",))
            p.run(tracer=faults, run_id="fixed")
        assert len(sleeps) == 2
        assert sleeps[0] == sleeps[1]
        assert 0.01 <= sleeps[0] <= 0.06

    def test_report_carries_run_id(self):
        p = DecisionPipeline("ids")
        p.add_data("ok", s_ok, reads=(), writes=("ok",))
        _, report = p.run(run_id="fixed-id")
        assert report.run_id == "fixed-id"
        _, report = p.run()
        assert report.run_id and len(report.run_id) == 12

    def test_run_start_event_names_backend_and_run(self):
        faults = FaultInjector()
        p = DecisionPipeline("events")
        p.add_data("ok", s_ok, reads=(), writes=("ok",))
        p.run(tracer=faults, run_id="rid", executor="serial")
        start = faults.of_kind("run_start")[0]
        assert start.data["run_id"] == "rid"
        assert start.data["executor"] == "serial"


# -- cache, events and metrics plumbing --------------------------------------


class TestCrossProcessPlumbing:
    def test_cache_replays_across_backends(self, process_executor):
        cache = StageCache()
        build_diamond().run(cache=cache, executor="serial")
        _, report = build_diamond().run(cache=cache,
                                        executor=process_executor)
        assert report.cache_hits == 4

    def test_cache_merge(self):
        source, target = StageCache(), StageCache()
        build_diamond().run(cache=source, executor="serial")
        assert target.merge(source) == len(source) > 0
        assert target.merge(source) == 0  # idempotent
        _, report = build_diamond().run(cache=target,
                                        executor="serial")
        assert report.cache_hits == 4

    def test_cache_merge_rejects_junk(self):
        with pytest.raises(TypeError):
            StageCache().merge({"key": "not-an-entry"})

    def test_event_dict_roundtrip(self):
        event = StageEvent("stage_end", "impute", "governance",
                           seconds=1.5)
        clone = StageEvent.from_dict(
            pickle.loads(pickle.dumps(event.to_dict())))
        assert clone.kind == event.kind
        assert clone.stage == event.stage
        assert clone.layer == event.layer
        assert clone.timestamp == event.timestamp
        assert clone.monotonic == event.monotonic
        assert clone.data == {"seconds": 1.5}

    def test_metrics_merge_snapshot(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("c", "a counter").inc(3, stage="s")
        worker.gauge("g", "a gauge").set(7.5, node="n")
        hist = worker.histogram("h", "a histogram")
        hist.observe(0.004, stage="s")
        hist.observe(2.0, stage="s")
        parent.counter("c", "a counter").inc(2, stage="s")
        parent.histogram("h", "a histogram").observe(0.004, stage="s")
        parent.merge_snapshot(worker.snapshot())
        assert parent.get("c").value(stage="s") == 5.0
        assert parent.get("g").value(node="n") == 7.5
        merged = parent.get("h")
        assert merged.count(stage="s") == 3
        assert merged.sum(stage="s") == pytest.approx(2.008)
        snap = parent.snapshot()["h"]["series"][0]
        assert snap["min"] == pytest.approx(0.004)
        assert snap["max"] == pytest.approx(2.0)

    def test_merge_snapshot_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(
                {"m": {"type": "mystery", "series": []}})

    def test_merge_snapshot_bucket_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("h").observe(0.5)
        snap = worker.snapshot()
        snap["h"]["buckets"] = [1.0, 2.0]  # claim matching bounds
        with pytest.raises(ValueError, match="bucket"):
            parent.merge_snapshot(snap)


# -- the Frontier helper -----------------------------------------------------


class TestFrontier:
    def test_diamond_ordering(self):
        deps = [set(), {0}, {0}, {1, 2}]
        frontier = Frontier(deps)
        assert frontier.take_ready() == [0]
        assert frontier.take_ready() == []  # claimed, not re-offered
        assert frontier.complete(0) == [1, 2]
        frontier.claim(1)
        frontier.claim(2)
        assert frontier.complete(1) == []
        assert frontier.complete(2) == [3]
        assert frontier.unstarted() == [3]
        frontier.claim(3)
        assert frontier.complete(3) == []
        assert frontier.unstarted() == []

    def test_abandoned_dependents_stay_unstarted(self):
        deps = [set(), {0}]
        frontier = Frontier(deps)
        frontier.take_ready()
        unblocked = frontier.complete(0)  # run aborts: never claimed
        assert unblocked == [1]
        assert frontier.unstarted() == [1]


# -- environment default -----------------------------------------------------


class TestEnvironmentDefault:
    def test_pipeline_honors_repro_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        p = DecisionPipeline("env")
        p.add_data("ok", s_ok, reads=(), writes=("ok",))
        _, report = p.run()
        assert report.status_map() == {"ok": "ok"}
        monkeypatch.setenv("REPRO_EXECUTOR", "nonsense")
        with pytest.raises(ValueError):
            p.run()
        assert os.environ["REPRO_EXECUTOR"] == "nonsense"
