"""The static contract analyzer: rule fixtures, CLI and self-check.

One fixture module per rule code, positive and negative, plus a
seeded-everything module asserting every rule reports the correct
``file:line`` and code in both text and JSON output, and a self-check
that the analyzer runs clean over ``src/repro`` and ``examples``.
"""

import json
from pathlib import Path

from repro.analysis import (
    all_rules,
    analyze_paths,
    analyze_source,
    function_effects,
)
from repro.lint import main as lint_main

REPO = Path(__file__).resolve().parent.parent


def codes(findings):
    return [finding.code for finding in findings]


def only(findings, code):
    return [finding for finding in findings if finding.code == code]


def line_of(source, marker):
    for number, line in enumerate(source.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not in fixture")


PRELUDE = "from repro import DecisionPipeline\n"


# -- RC001 undeclared read ---------------------------------------------------


class TestUndeclaredRead:
    def test_positive(self):
        src = PRELUDE + """
def stage(state):
    value = state["secret"]  # MARK
    state["out"] = value

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        findings = only(analyze_source(src), "RC001")
        assert len(findings) == 1
        assert findings[0].line == line_of(src, "# MARK")
        assert findings[0].severity == "error"
        assert "'secret'" in findings[0].message

    def test_read_of_declared_write_key_is_allowed(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1
    return str(state["out"])

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC001") == []

    def test_membership_probe_is_not_a_read(self):
        # __contains__ never raises ContractViolation at runtime.
        src = PRELUDE + """
def stage(state):
    state["out"] = "secret" in state

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC001") == []

    def test_certain_read_reported_even_when_view_escapes(self):
        src = PRELUDE + """
def helper(mapping):
    return len(mapping)

def stage(state):
    helper(state)
    state["out"] = state["secret"]  # MARK

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        findings = only(analyze_source(src), "RC001")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_fallback_body_checked_too(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

def rescue(state):
    state["out"] = state["secret"]  # MARK

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",),
           on_error="fallback", fallback=rescue)
"""
        findings = only(analyze_source(src), "RC001")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "rescue" in findings[0].message


# -- RC002 undeclared write --------------------------------------------------


class TestUndeclaredWrite:
    def test_positive_assignment(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1
    state["extra"] = 2  # MARK

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        findings = only(analyze_source(src), "RC002")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_positive_delete(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1
    del state["stale"]  # MARK

p = DecisionPipeline()
p.add_data("s", stage, reads=("stale",), writes=("out",))
"""
        findings = only(analyze_source(src), "RC002")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "deletes" in findings[0].message

    def test_update_keywords_are_writes(self):
        src = PRELUDE + """
def stage(state):
    state.update(out=1, extra=2)  # MARK

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        findings = only(analyze_source(src), "RC002")
        assert len(findings) == 1
        assert "'extra'" in findings[0].message

    def test_negative_declared(self):
        src = PRELUDE + """
def stage(state):
    state.update({"out": 1})
    state["also"] = 2

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out", "also"))
"""
        assert only(analyze_source(src), "RC002") == []


# -- RC003 dead declaration --------------------------------------------------


class TestDeadDeclaration:
    def test_dead_read(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("unused",), writes=("out",))  # MARK
"""
        findings = only(analyze_source(src), "RC003")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "warning"
        assert "'unused'" in findings[0].message

    def test_dead_write(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out", "ghost"))  # MARK
"""
        findings = only(analyze_source(src), "RC003")
        assert len(findings) == 1
        assert "'ghost'" in findings[0].message

    def test_view_escape_suppresses(self):
        src = PRELUDE + """
def helper(mapping):
    mapping["unused"]

def stage(state):
    helper(state)
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("unused",), writes=("out",))
"""
        assert only(analyze_source(src), "RC003") == []

    def test_alias_method_call_keeps_write_declaration_alive(self):
        # Mutating through an unknown method (set_edge_attribute
        # style) is why the key is declared as written.
        src = PRELUDE + """
def stage(state):
    net = state["net"]
    net.set_edge_attribute("a", "b", 1.0)
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("net",), writes=("out", "net"))
"""
        assert only(analyze_source(src), "RC003") == []


# -- RC004 in-place mutation of a read-only key ------------------------------


class TestMutatedReadOnly:
    def test_mutating_method_via_alias(self):
        src = PRELUDE + """
def stage(state):
    arr = state["arr"]
    arr.sort()  # MARK
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("arr",), writes=("out",))
"""
        findings = only(analyze_source(src), "RC004")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "error"

    def test_subscript_assignment_through_read_value(self):
        src = PRELUDE + """
def stage(state):
    state["arr"][0] = 99.0  # MARK
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("arr",), writes=("out",))
"""
        findings = only(analyze_source(src), "RC004")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_augmented_assignment_on_alias(self):
        src = PRELUDE + """
def stage(state):
    arr = state["arr"]
    arr += 1  # MARK
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("arr",), writes=("out",))
"""
        findings = only(analyze_source(src), "RC004")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_attribute_assignment_through_alias(self):
        src = PRELUDE + """
def stage(state):
    model = state["model"]
    model.coef = 0.0  # MARK
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("model",), writes=("out",))
"""
        findings = only(analyze_source(src), "RC004")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_declared_write_key_may_be_mutated(self):
        src = PRELUDE + """
def stage(state):
    arr = state["arr"]
    arr.sort()
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("arr",), writes=("out", "arr"))
"""
        assert only(analyze_source(src), "RC004") == []

    def test_nonmutating_method_is_fine(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = state["arr"].mean()

p = DecisionPipeline()
p.add_data("s", stage, reads=("arr",), writes=("out",))
"""
        assert only(analyze_source(src), "RC004") == []


# -- RC010 concurrent write-write --------------------------------------------


class TestConcurrentWriteWrite:
    def test_positive(self):
        src = PRELUDE + """
def left(state):
    state["left_out"] = 1
    state["shared"] = "L"

def right(state):
    state["right_out"] = 1
    state["shared"] = "R"

p = DecisionPipeline()
p.add_governance("left", left, reads=(), writes=("left_out",))
p.add_analytics("right", right, reads=(), writes=("right_out",))  # MARK
"""
        findings = only(analyze_source(src), "RC010")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "'left'" in findings[0].message
        assert "shared" in findings[0].message

    def test_negative_when_contract_orders_them(self):
        # Declaring the shared key creates a write-write DAG edge.
        src = PRELUDE + """
def left(state):
    state["shared"] = "L"

def right(state):
    state["shared"] = "R"

p = DecisionPipeline()
p.add_governance("left", left, reads=(), writes=("shared",))
p.add_analytics("right", right, reads=(), writes=("shared",))
"""
        assert only(analyze_source(src), "RC010") == []


# -- RC011 orphan read -------------------------------------------------------


class TestOrphanRead:
    def test_positive_with_later_writer_hint(self):
        src = PRELUDE + """
def early(state):
    state["out"] = state["late_key"]

def late(state):
    state["late_key"] = 1

p = DecisionPipeline()
p.add_data("early", early, reads=("late_key",), writes=("out",))  # MARK
p.add_decision("late", late, reads=(), writes=("late_key",))
p.run()
"""
        findings = only(analyze_source(src), "RC011")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "later stage" in findings[0].message

    def test_initial_state_provides(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = state["seed"]

p = DecisionPipeline()
p.add_data("s", stage, reads=("seed",), writes=("out",))
p.run({"seed": 3})
"""
        assert only(analyze_source(src), "RC011") == []

    def test_unknown_initial_state_stands_down(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = state["seed"]

def launch(initial):
    p = DecisionPipeline()
    p.add_data("s", stage, reads=("seed",), writes=("out",))
    return p.run(initial)
"""
        assert only(analyze_source(src), "RC011") == []


# -- RC012 unreachable fallback ----------------------------------------------


class TestUnreachableFallback:
    def test_fallback_with_wrong_policy(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

def rescue(state):
    state["out"] = 0

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",),
           on_error="skip", fallback=rescue)  # declared on prev line
"""
        findings = only(analyze_source(src), "RC012")
        assert len(findings) == 1
        assert findings[0].severity == "error"

    def test_fallback_policy_without_callable(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",),
           on_error="fallback")
"""
        assert len(only(analyze_source(src), "RC012")) == 1

    def test_negative(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = 1

def rescue(state):
    state["out"] = 0

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",),
           on_error="fallback", fallback=rescue)
"""
        assert only(analyze_source(src), "RC012") == []


# -- RC013 wildcard stage ----------------------------------------------------


class TestWildcardStage:
    def test_positive(self):
        src = PRELUDE + """
def declared(state):
    state["out"] = 1

def legacy(state):
    state["anything"] = 2

p = DecisionPipeline()
p.add_data("ok", declared, reads=(), writes=("out",))
p.add_governance("legacy", legacy)  # MARK
"""
        findings = only(analyze_source(src), "RC013")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "serializes" in findings[0].message

    def test_fully_legacy_pipeline_is_intentional(self):
        src = PRELUDE + """
def a(state):
    state["x"] = 1

def b(state):
    state["y"] = state["x"]

p = DecisionPipeline()
p.add_data("a", a)
p.add_governance("b", b)
"""
        assert only(analyze_source(src), "RC013") == []


# -- RC020 / RC021 repo-local rules ------------------------------------------


class TestRepoLocalRules:
    def test_np_trapezoid_attribute(self):
        src = """
import numpy as np

def area(ys, xs):
    return np.trapezoid(ys, xs)  # MARK
"""
        findings = only(analyze_source(src), "RC020")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "error"

    def test_np_trapz_under_other_alias(self):
        src = """
import numpy

def area(ys, xs):
    return numpy.trapz(ys, xs)  # MARK
"""
        findings = only(analyze_source(src), "RC020")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_import_from_numpy(self):
        src = "from numpy import trapz\n"
        assert len(only(analyze_source(src), "RC020")) == 1

    def test_shim_is_clean(self):
        src = """
from repro._validation import trapezoid

def area(ys, xs):
    return trapezoid(ys, xs)
"""
        assert only(analyze_source(src), "RC020") == []

    def test_unbounded_dijkstra_all(self):
        src = """
def reach(network, source):
    return network.dijkstra_all(source)  # MARK
"""
        findings = only(analyze_source(src), "RC021")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "warning"

    def test_bounded_dijkstra_all_is_clean(self):
        src = """
def reach(network, source):
    return network.dijkstra_all(source, cutoff=2.5)
"""
        assert only(analyze_source(src), "RC021") == []


# -- RC022 unpicklable stage function ----------------------------------------


class TestUnpicklableStageFunction:
    def test_lambda_stage(self):
        src = PRELUDE + """
p = DecisionPipeline()
p.add_data("lam", lambda state: None,  # MARK
           reads=(), writes=())
"""
        findings = only(analyze_source(src), "RC022")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "warning"
        assert findings[0].stage == "lam"
        assert "ProcessExecutor" in findings[0].message

    def test_lambda_fallback(self):
        src = PRELUDE + """
def work(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("w", work, reads=(), writes=("out",),
           on_error="fallback",
           fallback=lambda state: None)  # MARK
"""
        findings = only(analyze_source(src), "RC022")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "fallback" in findings[0].message

    def test_nested_def(self):
        src = PRELUDE + """
def build():
    def work(state):  # MARK
        state["out"] = 1
    p = DecisionPipeline()
    p.add_data("w", work, reads=(), writes=("out",))
    return p
"""
        findings = only(analyze_source(src), "RC022")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "pickled" in findings[0].message

    def test_module_level_def_is_clean(self):
        src = PRELUDE + """
def work(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("w", work, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC022") == []

    def test_shadowed_name_is_skipped(self):
        # A nested def whose name also exists at module level: the
        # analyzer cannot prove which binding the add_data site sees,
        # so it stays quiet rather than risk a false positive.
        src = PRELUDE + """
def work(state):
    state["out"] = 1

def build():
    def work(state):
        state["out"] = 2
    return work

p = DecisionPipeline()
p.add_data("w", work, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC022") == []

    def test_listed_in_catalogue(self):
        assert "RC022" in {rule.code for rule in all_rules()}


# -- RC023 unreduced dominance call ------------------------------------------


class TestUnreducedDominanceCall:
    def test_bare_call_in_stage(self):
        src = PRELUDE + """
from repro.decision import dominance_prune

def decide(state):
    state["survivors"] = dominance_prune(state["ensemble"])  # MARK

p = DecisionPipeline()
p.add_decision("d", decide, reads=("ensemble",),
               writes=("survivors",))
"""
        findings = only(analyze_source(src), "RC023")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "warning"
        assert findings[0].stage == "d"
        assert "reduce_to=" in findings[0].message

    def test_select_best_attribute_call(self):
        src = PRELUDE + """
import repro.decision as decision

def decide(state):
    state["best"] = decision.select_best(  # MARK
        state["ensemble"], state["utility"])

p = DecisionPipeline()
p.add_decision("d", decide, reads=("ensemble", "utility"),
               writes=("best",))
"""
        findings = only(analyze_source(src), "RC023")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "select_best" in findings[0].message

    def test_reduce_to_is_clean(self):
        src = PRELUDE + """
from repro.decision import dominance_prune, select_best

def decide(state):
    state["survivors"] = dominance_prune(state["ensemble"],
                                         reduce_to=50)
    state["best"] = select_best(state["ensemble"], state["utility"],
                                reduction=state["reduction"])

p = DecisionPipeline()
p.add_decision("d", decide,
               reads=("ensemble", "utility", "reduction"),
               writes=("survivors", "best"))
"""
        assert only(analyze_source(src), "RC023") == []

    def test_noqa_suppresses(self):
        src = PRELUDE + """
from repro.decision import dominance_prune

def decide(state):
    state["survivors"] = dominance_prune(state["ensemble"])  # noqa: RC023

p = DecisionPipeline()
p.add_decision("d", decide, reads=("ensemble",),
               writes=("survivors",))
"""
        assert only(analyze_source(src), "RC023") == []

    def test_call_outside_stage_is_ignored(self):
        src = PRELUDE + """
from repro.decision import dominance_prune

def interactive(ensemble):
    return dominance_prune(ensemble)

def decide(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_decision("d", decide, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC023") == []

    def test_listed_in_catalogue(self):
        assert "RC023" in {rule.code for rule in all_rules()}


# -- parsing, suppression, extraction edge cases -----------------------------


class TestAnalyzerMechanics:
    def test_syntax_error_is_rc000(self):
        findings = analyze_source("def broken(:\n", path="bad.py")
        assert codes(findings) == ["RC000"]
        assert findings[0].is_error
        assert findings[0].path == "bad.py"

    def test_noqa_suppresses_by_code(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = state["secret"]  # noqa: RC001

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        assert only(analyze_source(src), "RC001") == []

    def test_noqa_other_code_does_not_suppress(self):
        src = PRELUDE + """
def stage(state):
    state["out"] = state["secret"]  # noqa: RC002

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        assert len(only(analyze_source(src), "RC001")) == 1

    def test_select_and_ignore_prefixes(self):
        src = PRELUDE + """
import numpy as np

def stage(state):
    state["out"] = np.trapz([1.0], [0.0])
    state["extra"] = state["secret"]

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
"""
        assert set(codes(analyze_source(src))) == {
            "RC001", "RC002", "RC020"}
        assert set(codes(analyze_source(src, select=["RC00"]))) == {
            "RC001", "RC002"}
        assert set(codes(analyze_source(src, ignore=["RC002"]))) == {
            "RC001", "RC020"}

    def test_chained_construction_and_factory_idiom(self):
        src = PRELUDE + """
def collect(state):
    state["raw"] = [1, 2, 3]

def analyze(state):
    state["out"] = state["missing"]  # MARK

def build():
    pipeline = (DecisionPipeline("ops")
                .add_data("collect", collect,
                          reads=(), writes=("raw",))
                .add_analytics("an", analyze,
                               reads=("raw",), writes=("out",)))
    return pipeline

build().run()
"""
        findings = analyze_source(src)
        assert [f.line for f in only(findings, "RC001")] == [
            line_of(src, "# MARK")]
        # both stages extracted into one pipeline: the dead 'raw'
        # read of stage 'an' is real and flagged
        assert len(only(findings, "RC003")) == 1

    def test_lambda_stage_function(self):
        src = PRELUDE + """
p = DecisionPipeline()
p.add_data("seed", lambda s: s.update(x=1) or "ok",
           reads=(), writes=())  # MARK
"""
        findings = only(analyze_source(src), "RC002")
        assert len(findings) == 1
        assert "'x'" in findings[0].message

    def test_tuple_unpack_aliases(self):
        src = PRELUDE + """
def stage(state):
    left, right = state["a"], state["b"]
    left.append(right)  # MARK
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=("a", "b"), writes=("out",))
"""
        findings = only(analyze_source(src), "RC004")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "'a'" in findings[0].message

    def test_function_effects_direct(self):
        src = """
def stage(state):
    value = state.get("a")
    state["b"] = value
    del state["c"]
    state.setdefault("d", 1)
"""
        import ast
        fn = ast.parse(src).body[0]
        fx = function_effects(fn)
        assert set(fx.reads) == {"a", "d"}
        assert set(fx.writes) == {"b", "d"}
        assert set(fx.deletes) == {"c"}
        assert not fx.opaque


# -- CLI ---------------------------------------------------------------------


SEEDED = PRELUDE + """import numpy as np


def collect(state):
    state["arr"] = np.arange(4.0)
    state["hidden"] = 1  # SEED-RC002


def detect(state):
    arr = state["arr"]
    arr.sort()  # SEED-RC004
    peek = state["hidden"]  # SEED-RC001
    state["scores"] = arr + peek
    state["hidden"] = 0


def summarize(state):
    state["area"] = np.trapezoid(state["scores"])  # SEED-RC020
    state["report"] = state["ghost"]
    state["audit"] = "summarize"


def act(state):
    state["plan"] = str(state["scores"])
    state["audit"] = "act"


p = DecisionPipeline("seeded")
p.add_data("collect", collect, reads=(), writes=("arr",))
p.add_analytics("detect", detect,  # SEED-RC003
                reads=("arr", "unused"),
                writes=("scores",))
p.add_analytics("summarize", summarize,  # SEED-RC011
                reads=("scores", "ghost"),
                writes=("area", "report"))
p.add_decision("act", act,  # SEED-RC010
               reads=("scores",), writes=("plan",))
p.run()
"""

#: every seeded violation: rule code -> fixture marker
SEEDS = {
    "RC001": "# SEED-RC001",
    "RC002": "# SEED-RC002",
    "RC003": "# SEED-RC003",
    "RC004": "# SEED-RC004",
    "RC010": "# SEED-RC010",
    "RC011": "# SEED-RC011",
    "RC020": "# SEED-RC020",
}


class TestCli:
    def test_seeded_violations_text_and_json(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED, encoding="utf-8")
        report_path = tmp_path / "report.json"

        exit_code = lint_main([str(fixture)])
        text = capsys.readouterr().out
        assert exit_code == 1  # errors present

        exit_code = lint_main([str(fixture), "--format=json",
                               "--output", str(report_path)])
        capsys.readouterr()
        assert exit_code == 1
        report = json.loads(report_path.read_text(encoding="utf-8"))

        by_code = {}
        for finding in report["findings"]:
            by_code.setdefault(finding["code"], []).append(finding)
        for code, marker in SEEDS.items():
            expected_line = line_of(SEEDED, marker)
            lines = [f["line"] for f in by_code.get(code, [])]
            assert expected_line in lines, (
                f"{code} not reported at line {expected_line}: "
                f"{report['findings']}")
            expected_text = f"{fixture}:{expected_line}:"
            assert any(expected_text in line and code in line
                       for line in text.splitlines()), (
                f"{code} missing from text output at "
                f"{expected_text}")
        assert report["summary"]["errors"] > 0
        assert report["summary"]["files"] == 1

    def test_wildcard_seed_reported(self, tmp_path, capsys):
        # RC012/RC013 need their own fixture: the constructor-level
        # errors would distort the seeded pipeline above.
        src = PRELUDE + """
def a(state):
    state["x"] = 1

def b(state):
    state["y"] = state["x"]

def rescue(state):
    state["y"] = 0

p = DecisionPipeline()
p.add_data("a", a, reads=(), writes=("x",))
p.add_governance("b", b, on_error="skip",
                 fallback=rescue)  # SEED-RC012 SEED-RC013
"""
        fixture = tmp_path / "wild.py"
        fixture.write_text(src, encoding="utf-8")
        exit_code = lint_main([str(fixture), "--format=json"])
        report = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        reported = {f["code"] for f in report["findings"]}
        assert {"RC012", "RC013"} <= reported

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text(PRELUDE + """
def stage(state):
    state["out"] = 1

p = DecisionPipeline()
p.add_data("s", stage, reads=(), writes=("out",))
p.run()
""", encoding="utf-8")
        assert lint_main([str(fixture)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.code in out

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        import pytest
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path / "nope")])
        capsys.readouterr()


# -- self-check --------------------------------------------------------------


class TestSelfCheck:
    def test_analyzer_runs_clean_on_the_repo(self):
        findings, n_files = analyze_paths(
            [REPO / "src" / "repro", REPO / "examples"])
        assert n_files > 80
        assert findings == [], [f.render() for f in findings]

    def test_rule_catalogue_is_documented(self):
        catalogue = (REPO / "docs" / "STATIC_ANALYSIS.md").read_text(
            encoding="utf-8")
        for rule in all_rules():
            assert rule.code in catalogue, (
                f"{rule.code} missing from docs/STATIC_ANALYSIS.md")
