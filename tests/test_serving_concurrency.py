"""Concurrency stress tests for the shared query objects + server.

The serving layer hammers one shared matcher / router / network from
many threads, so their lazily built snapshots and LRU memos must be
thread-safe *and* history-independent: every concurrent result must
be byte-identical to what a fresh single-threaded oracle computes,
and the cache hit/miss counters must account every lookup exactly
once no matter the interleaving.
"""

import threading

import numpy as np
import pytest

from repro import DecisionServer, RoadNetwork
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.decision import StochasticRouter
from repro.decision.utility import DeadlineUtility
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import EdgeCentricModel
from repro.observability.metrics import use_registry
from repro.serve import DistanceQuery, MatchQuery, RouteQuery

N_THREADS = 8
N_REPEATS = 3


def hammer(n_threads, work):
    """Run ``work(thread_index)`` on ``n_threads`` barrier-synchronized
    threads, re-raising the first worker exception."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(index):
        barrier.wait()
        try:
            work(index)
        except BaseException as error:  # noqa: B036 - re-raised below
            errors.append(error)

    threads = [threading.Thread(target=runner, args=(i,), daemon=True)
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture(scope="module")
def world():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    trips_xy = generator.generate(6, noise_sigma=0.1,
                                  sample_interval=0.5, min_hops=4)
    trajectories = [trajectory for _, trajectory in trips_xy]
    od_pairs = [((0, 0), (5, 5)), ((0, 5), (5, 0)), ((3, 0), (3, 5)),
                ((0, 2), (5, 2))]
    rng = np.random.default_rng(2)
    trips = []
    for origin, destination in od_pairs:
        for path in network.k_shortest_paths(origin, destination, 4):
            edges = network.path_edges(path)
            for _ in range(20):
                trips.append((path,
                              simulator.sample_edge_times(edges, 480,
                                                          rng=rng),
                              480.0))
    model = EdgeCentricModel(n_bins=25).fit(trips)
    return network, model, od_pairs, trajectories


def fresh_network():
    return RoadNetwork.grid(6, 6)


class TestMatcherConcurrency:
    def test_concurrent_match_equals_serial_oracle(self, world):
        network, _, _, trajectories = world
        oracle = HmmMapMatcher(network, sigma=0.12, beta=0.5)
        expected = [oracle.match(t) for t in trajectories]
        serial_lookups = oracle.cache_info()
        serial_total = serial_lookups["hits"] + serial_lookups["misses"]

        with use_registry() as registry:
            shared = HmmMapMatcher(network, sigma=0.12, beta=0.5)

            def work(index):
                for _ in range(N_REPEATS):
                    results = shared.match_many(trajectories)
                    for result, want in zip(results, expected):
                        assert result == want

            hammer(N_THREADS, work)

            # Every lookup accounted exactly once: the per-trajectory
            # lookup count is cache-state independent, so the counters
            # must reconcile to the serial total exactly.
            info = shared.cache_info()
            assert info["hits"] + info["misses"] == \
                N_THREADS * N_REPEATS * serial_total
            counter = registry.get("fusion.distance_cache_lookups_total")
            assert counter.value(outcome="hit") \
                + counter.value(outcome="miss") == \
                info["hits"] + info["misses"]
            assert info["size"] <= info["maxsize"]

    def test_tiny_lru_under_contention_stays_correct(self, world):
        """Constant eviction pressure: popitem/move_to_end racing."""
        network, _, _, trajectories = world
        oracle = HmmMapMatcher(network, sigma=0.12, beta=0.5)
        expected = [oracle.match(t) for t in trajectories]
        shared = HmmMapMatcher(network, sigma=0.12, beta=0.5,
                               distance_cache_size=4)

        def work(index):
            for _ in range(N_REPEATS):
                for trajectory, want in zip(trajectories, expected):
                    assert shared.match(trajectory) == want

        hammer(N_THREADS, work)
        info = shared.cache_info()
        assert info["size"] <= 4


class TestNetworkConcurrency:
    def test_first_geometry_build_race(self, world):
        """8 threads trigger the lazy grid build simultaneously."""
        _, _, _, _ = world
        reference = fresh_network()
        rng = np.random.default_rng(3)
        points = [tuple(p) for p in rng.uniform(-0.5, 5.5, (40, 2))]
        radii = list(rng.uniform(0.3, 2.0, 40))
        expected_candidates = [
            reference.candidate_edges(point, radius)
            for point, radius in zip(points, radii)
        ]
        expected_nearest = [reference.nearest_node(point)
                            for point in points]

        shared = fresh_network()

        def work(index):
            for point, radius, want_c, want_n in zip(
                    points, radii, expected_candidates,
                    expected_nearest):
                assert shared.candidate_edges(point, radius) == want_c
                assert shared.nearest_node(point) == want_n

        hammer(N_THREADS, work)

    def test_first_adjacency_build_race(self, world):
        reference = fresh_network()
        sources = [(0, 0), (2, 3), (5, 5), (1, 4)]
        expected = {
            source: reference.dijkstra_array(source, cutoff=6.0)
            for source in sources
        }

        shared = fresh_network()

        def work(index):
            for source in sources:
                np.testing.assert_array_equal(
                    shared.dijkstra_array(source, cutoff=6.0),
                    expected[source])
                assert shared.dijkstra_all(source)[(5, 0)] == \
                    reference.dijkstra_all(source)[(5, 0)]

        hammer(N_THREADS, work)

    def test_invalidate_geometry_during_queries(self):
        """Readers racing invalidate_geometry() always see a
        consistent snapshot (the geometry itself never changes)."""
        shared = fresh_network()
        reference = fresh_network()
        point, radius = (2.3, 2.7), 1.1
        want = reference.candidate_edges(point, radius)
        want_row = reference.dijkstra_array((0, 0))
        stop = threading.Event()

        def invalidator():
            while not stop.is_set():
                shared.invalidate_geometry()

        storm = threading.Thread(target=invalidator, daemon=True)
        storm.start()
        try:
            def work(index):
                for _ in range(30):
                    assert shared.candidate_edges(point, radius) == want
                    np.testing.assert_array_equal(
                        shared.dijkstra_array((0, 0)), want_row)
            hammer(N_THREADS, work)
        finally:
            stop.set()
            storm.join()


class TestRouterConcurrency:
    def test_concurrent_route_many_equals_serial_oracle(self, world):
        network, model, od_pairs, _ = world
        utility = DeadlineUtility(12.0)
        queries = [(origin, destination, 480.0)
                   for origin, destination in od_pairs]
        oracle = StochasticRouter(network, model, n_candidates=4)
        expected = oracle.route_many(queries, utility)
        serial_info = oracle.cache_info()
        serial_total = serial_info["hits"] + serial_info["misses"]

        with use_registry() as registry:
            shared = StochasticRouter(network, model, n_candidates=4)

            def work(index):
                for _ in range(N_REPEATS):
                    results = shared.route_many(queries, utility)
                    for result, want in zip(results, expected):
                        if want is None:
                            assert result is None
                            continue
                        assert result[0] == want[0]
                        np.testing.assert_array_equal(
                            result[1].support, want[1].support)
                        np.testing.assert_array_equal(
                            result[1].probabilities,
                            want[1].probabilities)
                        assert result[2] == want[2]

            hammer(N_THREADS, work)

            info = shared.cache_info()
            assert info["hits"] + info["misses"] == \
                N_THREADS * N_REPEATS * serial_total
            counter = registry.get(
                "decision.router_memo_lookups_total")
            assert counter.value(outcome="hit") \
                + counter.value(outcome="miss") == \
                info["hits"] + info["misses"]


class TestReducedRouterConcurrency:
    def test_concurrent_reduced_route_many_equals_serial_oracle(
            self, world):
        """The scenario-reduction path under the same stress pattern:
        8 threads share one router whose candidate ensembles are
        compressed through the lock-guarded reduction memo; every
        result must match a fresh single-threaded reduced oracle, and
        the memo probe counters must reconcile exactly."""
        network, model, od_pairs, _ = world
        utility = DeadlineUtility(12.0)
        queries = [(origin, destination, 480.0)
                   for origin, destination in od_pairs]
        oracle = StochasticRouter(network, model, n_candidates=4,
                                  reduction=2)
        expected = oracle.route_many(queries, utility)
        serial_info = oracle.cache_info()
        serial_total = serial_info["hits"] + serial_info["misses"]

        with use_registry() as registry:
            shared = StochasticRouter(network, model, n_candidates=4,
                                      reduction=2)

            def work(index):
                for _ in range(N_REPEATS):
                    results = shared.route_many(queries, utility)
                    for result, want in zip(results, expected):
                        if want is None:
                            assert result is None
                            continue
                        assert result[0] == want[0]
                        np.testing.assert_array_equal(
                            result[1].support, want[1].support)
                        np.testing.assert_array_equal(
                            result[1].probabilities,
                            want[1].probabilities)
                        assert result[2] == want[2]

            hammer(N_THREADS, work)

            info = shared.cache_info()
            assert info["hits"] + info["misses"] == \
                N_THREADS * N_REPEATS * serial_total
            assert info["reduction_memo_size"] <= info["maxsize"]
            counter = registry.get(
                "decision.router_memo_lookups_total")
            assert counter.value(outcome="hit") \
                + counter.value(outcome="miss") == \
                info["hits"] + info["misses"]

    def test_reduced_matches_full_router_under_stress(self, world):
        """Concurrent reduced routing never drifts from the full-
        ensemble winner on this workload (zero decision regret)."""
        network, model, od_pairs, _ = world
        utility = DeadlineUtility(12.0)
        queries = [(origin, destination, 480.0)
                   for origin, destination in od_pairs]
        full = StochasticRouter(network, model, n_candidates=4)
        expected = full.route_many(queries, utility)
        shared = StochasticRouter(network, model, n_candidates=4,
                                  reduction=2)

        def work(index):
            for _ in range(N_REPEATS):
                for result, want in zip(
                        shared.route_many(queries, utility), expected):
                    if want is None:
                        assert result is None
                        continue
                    assert result[0] == want[0]
                    assert result[2] == want[2]

        hammer(N_THREADS, work)


class TestServerConcurrency:
    def test_hammered_server_stays_equivalent(self, world):
        network, model, od_pairs, trajectories = world
        utility = DeadlineUtility(12.0)
        route_oracle = StochasticRouter(network, model, n_candidates=4)
        match_oracle = HmmMapMatcher(network, sigma=0.12, beta=0.5)
        expected_routes = {
            pair: route_oracle.route_many([(pair[0], pair[1], 480.0)],
                                          utility)[0]
            for pair in od_pairs
        }
        expected_matches = [match_oracle.match(t) for t in trajectories]
        expected_rows = {
            pair[0]: network.dijkstra_array(pair[0], cutoff=5.0)
            for pair in od_pairs
        }

        router = StochasticRouter(network, model, n_candidates=4)
        matcher = HmmMapMatcher(network, sigma=0.12, beta=0.5)
        with DecisionServer(router=router, matcher=matcher,
                            utility=utility, max_queue=512,
                            batch_window=0.001) as server:

            def work(index):
                for iteration in range(10):
                    pair = od_pairs[(index + iteration) % len(od_pairs)]
                    kind = (index + iteration) % 3
                    if kind == 0:
                        result = server.route(pair[0], pair[1],
                                              departure_minute=480.0)
                        assert result.ok
                        want = expected_routes[pair]
                        if want is None:
                            assert result.value is None
                        else:
                            assert result.value[0] == want[0]
                            assert result.value[2] == want[2]
                    elif kind == 1:
                        position = (index + iteration) \
                            % len(trajectories)
                        result = server.match(trajectories[position])
                        assert result.ok
                        assert result.value == \
                            expected_matches[position]
                    else:
                        result = server.distances(pair[0], cutoff=5.0)
                        assert result.ok
                        np.testing.assert_array_equal(
                            result.value, expected_rows[pair[0]])

            hammer(N_THREADS, work)
            stats = server.stats()
        assert stats["outcomes"].get("ok", 0) == N_THREADS * 10
        assert stats["submitted"] == N_THREADS * 10

    def test_hammered_submit_vs_bounded_queue_never_hangs(self, world):
        """Admission under submit storms: every future resolves."""
        network, model, od_pairs, _ = world
        router = StochasticRouter(network, model, n_candidates=4)
        with DecisionServer(router=router,
                            utility=DeadlineUtility(12.0),
                            max_queue=4, batch_window=0.0) as server:
            outcomes = []
            lock = threading.Lock()

            def work(index):
                futures = [
                    server.submit(RouteQuery(*od_pairs[0], 480.0))
                    for _ in range(20)
                ]
                resolved = [future.result(timeout=30)
                            for future in futures]
                with lock:
                    outcomes.extend(r.outcome for r in resolved)

            hammer(N_THREADS, work)
        assert len(outcomes) == N_THREADS * 20
        assert set(outcomes) <= {"ok", "overloaded"}
        assert outcomes.count("ok") > 0


class TestQueryObjectHashing:
    def test_queries_are_hashable_and_frozen(self):
        assert hash(RouteQuery("a", "b", 1.0)) == \
            hash(RouteQuery("a", "b", 1.0))
        assert hash(MatchQuery("t")) == hash(MatchQuery("t"))
        assert hash(DistanceQuery("s", 2.0)) == \
            hash(DistanceQuery("s", 2.0))
        with pytest.raises(AttributeError):
            RouteQuery("a", "b").origin = "c"
