"""Observability layer: metrics, span tracing, profiling and the CLI.

Covers the four guarantees the layer makes:

* the :class:`MetricsRegistry` is exact — concurrent increments are
  never lost, label series never collide, snapshots are JSON-ready;
* the :class:`SpanTracer` folds the engine's event stream into the
  documented span tree, pinned by a golden-trace fixture
  (``tests/fixtures/golden_trace.json``) so any schema drift in the
  event stream or span folding fails loudly;
* ``profile=True`` attaches per-stage wall/CPU/memory/queue-wait
  numbers to the run report;
* ``python -m repro.trace`` exports valid ``chrome://tracing`` JSON.

Regenerate the golden fixture after an *intentional* schema change::

    PYTHONPATH=src python tests/test_observability.py --regen
"""

import json
import os
import threading
import tracemalloc

import pytest

from repro import DecisionPipeline, FaultInjector
from repro.core.events import EVENT_KINDS
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SpanTracer,
    TeeTracer,
)
from repro.observability.metrics import (
    get_registry,
    set_registry,
    use_registry,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "golden_trace.json")


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c", "c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("hits", "hits")
        counter.inc(stage="a")
        counter.inc(3, stage="b")
        assert counter.value(stage="a") == pytest.approx(1.0)
        assert counter.value(stage="b") == pytest.approx(3.0)
        assert counter.total() == pytest.approx(4.0)

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("c", "c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(b="2", a="1") == pytest.approx(2.0)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth", "queue depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == pytest.approx(12.0)

    def test_histogram_buckets_and_stats(self):
        histogram = MetricsRegistry().histogram(
            "latency", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        series = histogram._snapshot_series()[0]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(55.55)
        assert series["min"] == pytest.approx(0.05)
        assert series["max"] == pytest.approx(50.0)
        # one observation per bucket, including the implicit +inf
        assert series["bucket_counts"] == [1, 1, 1, 1]

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", "h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", "h2", buckets=())

    def test_histogram_quantile_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram(
            "q", "q", buckets=(1.0, 2.0, 4.0))
        # 10 samples spread uniformly in (1, 2]: the median rank
        # lands mid-bucket, so interpolation gives the bucket middle.
        for i in range(10):
            histogram.observe(1.05 + i * 0.1)
        assert histogram.quantile(0.5) == pytest.approx(1.5, abs=0.11)
        # p0 / p100 stay inside the observed range (min/max clamping).
        assert histogram.quantile(0.0) >= 1.0
        assert histogram.quantile(1.0) <= 2.0

    def test_histogram_quantile_clamps_overflow_bucket(self):
        histogram = MetricsRegistry().histogram(
            "q", "q", buckets=(1.0,))
        histogram.observe(5.0)
        histogram.observe(7.0)
        # Both samples overflow the last bound; without the tracked
        # max the +inf bucket would be unanswerable.
        assert 5.0 <= histogram.quantile(0.99) <= 7.0

    def test_histogram_quantile_edge_cases(self):
        histogram = MetricsRegistry().histogram(
            "q", "q", buckets=(1.0, 2.0))
        assert histogram.quantile(0.5) is None  # no samples yet
        histogram.observe(1.5, op="route")
        assert histogram.quantile(0.5) is None  # unlabeled series
        assert histogram.quantile(0.5, op="route") == \
            pytest.approx(1.5, abs=0.51)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_histogram_quantile_is_monotone_in_q(self):
        histogram = MetricsRegistry().histogram("q", "q")
        rng_values = [0.003, 0.02, 0.09, 0.4, 1.7, 6.0, 0.01, 0.25]
        for value in rng_values:
            histogram.observe(value)
        quantiles = [histogram.quantile(q)
                     for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)
        assert min(rng_values) <= quantiles[0]
        assert quantiles[-1] <= max(rng_values)

    def test_histogram_quantile_skips_empty_buckets(self):
        histogram = MetricsRegistry().histogram(
            "q", "q", buckets=(1.0, 2.0, 4.0, 8.0))
        # Samples only in the first and last finite buckets: the rank
        # walk must hop over the two empty middle buckets.
        histogram.observe(0.5)
        histogram.observe(6.0)
        assert histogram.quantile(0.25) <= 1.0
        assert 4.0 <= histogram.quantile(0.99) <= 6.0

    def test_histogram_quantile_first_bucket_clamps_to_min(self):
        histogram = MetricsRegistry().histogram(
            "q", "q", buckets=(10.0, 20.0))
        # Both samples sit high inside the wide first bucket; the
        # tracked min lifts the interpolation floor off 0.0.
        histogram.observe(9.0)
        histogram.observe(9.5)
        assert histogram.quantile(0.01) >= 9.0
        assert histogram.quantile(0.99) <= 9.5

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_get_is_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("m", "m")
        assert registry.counter("m", "m") is counter
        with pytest.raises(TypeError):
            registry.gauge("m", "m")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(stage="x")
        registry.gauge("g", "a gauge").set(2)
        registry.histogram("h", "a histogram").observe(0.3)
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)
        assert "bucket_counts" in text
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["c"]["series"][0]["labels"] == {"stage": "x"}
        assert snapshot["h"]["buckets"] == list(DEFAULT_BUCKETS)

    def test_reset_drops_all_families(self):
        registry = MetricsRegistry()
        registry.counter("c", "c").inc()
        registry.reset()
        assert registry.names() == []
        assert registry.counter("c", "c").total() == 0.0

    def test_use_registry_installs_and_restores(self):
        before = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            assert scoped is not before
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        before = get_registry()
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert previous is before
            assert get_registry() is fresh
        finally:
            set_registry(before)

    def test_concurrent_increments_are_exact(self):
        """8 threads x 1000 increments: the counter never drops one."""
        registry = MetricsRegistry()
        counter = registry.counter("hammer", "hammer")
        histogram = registry.histogram("hammer_h", "hammer",
                                       buckets=(0.5,))
        n_threads, n_iterations = 8, 1000

        def hammer(thread_index):
            for _ in range(n_iterations):
                counter.inc(thread=str(thread_index))
                histogram.observe(0.1)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == pytest.approx(
            n_threads * n_iterations)
        for i in range(n_threads):
            assert counter.value(thread=str(i)) == pytest.approx(
                n_iterations)
        assert histogram.count() == n_threads * n_iterations


# ---------------------------------------------------------------------------
# golden trace
# ---------------------------------------------------------------------------


def canonical_run():
    """The canonical pipeline behind the golden-trace fixture.

    One stage of each flavour: a clean success, a retry after an
    injected fault, a skip, and a fallback — serialised with
    ``max_workers=1`` so the event order is deterministic.
    """
    spans = SpanTracer()
    faults = (FaultInjector()
              .fail("repair", times=1)
              .forward_to(spans))
    pipeline = DecisionPipeline("golden")
    pipeline.add_data(
        "collect", lambda s: s.update(x=1) or "ok",
        reads=(), writes=("x",))
    pipeline.add_governance(
        "repair", lambda s: s.update(y=s["x"] + 1) or "ok",
        reads=("x",), writes=("y",), retries=1, backoff=0.0)
    pipeline.add_analytics(
        "detect",
        lambda s: (_ for _ in ()).throw(ValueError("detector down")),
        reads=("y",), writes=("scores",), on_error="skip")
    pipeline.add_decision(
        "act",
        lambda s: (_ for _ in ()).throw(RuntimeError("primary down")),
        reads=("y",), writes=("action",), on_error="fallback",
        fallback=lambda s: s.update(action="hold") or "held")
    with use_registry():
        state, report = pipeline.run(tracer=faults, max_workers=1)
    return state, faults, spans


def canonical_stream():
    """The canonical streaming session behind the golden fixture.

    Two ticks over a three-stage DAG: the first full (nothing to
    replay yet), the second mutating one input so one branch replays
    from its delta while the dirty cone re-executes — serialised with
    ``max_workers=1`` so the event order is deterministic.
    """
    spans = SpanTracer()
    pipeline = DecisionPipeline("golden-stream")
    pipeline.add_data(
        "feed", lambda s: s.update(x=s["a"] * 2) or "ok",
        reads=("a",), writes=("x",))
    pipeline.add_governance(
        "calm", lambda s: s.update(c=1) or "ok",
        reads=("b",), writes=("c",))
    pipeline.add_decision(
        "decide", lambda s: s.update(d=s["x"] + s["c"]) or "ok",
        reads=("x", "c"), writes=("d",))
    with use_registry():
        session = pipeline.stream({"a": 1, "b": 2}, tracer=spans,
                                  max_workers=1)
        session.tick()
        state, _ = session.tick(changed={"a": 3})
    return state, spans


def _span_summary(tracer):
    """The schema-stable projection of the span tree the fixture pins."""
    by_id = {span.span_id: span for span in tracer.spans()}
    summary = []
    for span in tracer.spans():
        parent = by_id.get(span.parent_id)
        summary.append({
            "kind": span.kind,
            "name": span.name,
            "status": span.status,
            "parent": (f"{parent.kind}/{parent.name}"
                       if parent else None),
            "attempt": span.attributes.get("attempt"),
        })
    return summary


def build_golden():
    """The full fixture payload for the canonical run."""
    _, faults, spans = canonical_run()
    _, stream_spans = canonical_stream()
    return {
        "event_kinds": list(EVENT_KINDS),
        "event_sequence": faults.kinds(),
        "spans": _span_summary(spans),
        "span_fields": sorted(spans.spans()[0].as_dict()),
        "stream_events": stream_spans.kinds(),
        "stream_spans": _span_summary(stream_spans),
    }


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(FIXTURE, encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.fixture(scope="class")
    def actual(self):
        return build_golden()

    def test_event_kind_vocabulary_is_pinned(self, golden):
        assert list(EVENT_KINDS) == golden["event_kinds"]

    def test_event_sequence_matches_fixture(self, golden, actual):
        assert actual["event_sequence"] == golden["event_sequence"]

    def test_span_tree_matches_fixture(self, golden, actual):
        assert actual["spans"] == golden["spans"]

    def test_span_dict_schema_is_pinned(self, golden, actual):
        assert actual["span_fields"] == golden["span_fields"]

    def test_stream_event_sequence_matches_fixture(self, golden,
                                                   actual):
        assert actual["stream_events"] == golden["stream_events"]

    def test_stream_span_tree_matches_fixture(self, golden, actual):
        assert actual["stream_spans"] == golden["stream_spans"]

    def test_stream_state_reflects_the_replayed_branch(self):
        state, spans = canonical_stream()
        assert state["d"] == 7  # x = 3 * 2 re-executed, c = 1 replayed
        tick_spans = spans.spans(kind="tick")
        assert [span.name for span in tick_spans] == ["tick-0",
                                                      "tick-1"]
        run_parents = {span.parent_id
                       for span in spans.spans(kind="run")}
        assert run_parents == {span.span_id for span in tick_spans}

    def test_canonical_run_is_deterministic(self):
        assert build_golden() == build_golden()

    def test_state_reflects_skip_and_fallback(self):
        state, _, _ = canonical_run()
        assert state["y"] == 2
        assert state["action"] == "hold"
        assert "scores" not in state

    def test_chrome_trace_export_is_valid(self, tmp_path):
        _, _, spans = canonical_run()
        path = spans.export(tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert events[0] == {"ph": "M", "name": "process_name",
                             "pid": 0,
                             "args": {"name": "repro.DecisionPipeline"}}
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == len(spans.spans())
        # one fault_injected + one retry + one skip + one fallback
        assert sorted(e["name"] for e in instants) == [
            "fault_injected", "stage_fallback", "stage_retry",
            "stage_skip"]
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)

    def test_metrics_of_canonical_run(self):
        spans = SpanTracer()
        faults = (FaultInjector()
                  .fail("repair", times=1)
                  .forward_to(spans))
        pipeline = DecisionPipeline("golden-metrics")
        pipeline.add_data("collect", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        pipeline.add_governance(
            "repair", lambda s: s.update(y=s["x"] + 1) or "ok",
            reads=("x",), writes=("y",), retries=1, backoff=0.0)
        with use_registry() as registry:
            pipeline.run(tracer=faults, max_workers=1)
        attempts = registry.get("engine.stage_attempts_total")
        assert attempts.value(stage="collect") == pytest.approx(1.0)
        assert attempts.value(stage="repair") == pytest.approx(2.0)
        retries = registry.get("engine.stage_retries_total")
        assert retries.value(stage="repair") == pytest.approx(1.0)
        outcomes = registry.get("engine.stage_outcomes_total")
        assert outcomes.value(stage="repair",
                              status="ok") == pytest.approx(1.0)
        injected = registry.get("engine.faults_injected_total")
        assert injected.value(stage="repair",
                              kind="fail") == pytest.approx(1.0)
        durations = registry.get("engine.stage_duration_seconds")
        assert durations.count(stage="repair") == 1
        runs = registry.get("engine.runs_total")
        assert runs.value(status="ok") == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# concurrency stress
# ---------------------------------------------------------------------------

N_STAGES = 32
N_INCREMENTS = 50


class TestConcurrencyStress:
    @pytest.fixture(scope="class")
    def stressed(self):
        """32 contract-independent stages hammering shared metrics."""
        spans = SpanTracer()
        pipeline = DecisionPipeline("stress")

        def make_stage(index):
            label = f"s{index:02d}"

            def work(state):
                registry = get_registry()
                counter = registry.counter(
                    "stress.work_total", "stress increments")
                histogram = registry.histogram(
                    "stress.latency_seconds", "stress latencies",
                    buckets=(0.001, 0.01, 0.1))
                for _ in range(N_INCREMENTS):
                    counter.inc(stage=label)
                    histogram.observe(0.0005, stage=label)
                state[f"out{index}"] = index
                return "ok"

            return work

        for index in range(N_STAGES):
            pipeline.add_analytics(f"s{index:02d}", make_stage(index),
                                   reads=(), writes=(f"out{index}",))
        with use_registry() as registry:
            state, _ = pipeline.run(tracer=spans, max_workers=8)
        return state, registry, spans

    def test_counter_totals_are_exact(self, stressed):
        _, registry, _ = stressed
        counter = registry.get("stress.work_total")
        assert counter.total() == pytest.approx(
            N_STAGES * N_INCREMENTS)
        for index in range(N_STAGES):
            assert counter.value(
                stage=f"s{index:02d}") == pytest.approx(N_INCREMENTS)

    def test_histogram_counts_are_exact(self, stressed):
        _, registry, _ = stressed
        histogram = registry.get("stress.latency_seconds")
        assert histogram.total_count() == N_STAGES * N_INCREMENTS
        for index in range(N_STAGES):
            assert histogram.count(
                stage=f"s{index:02d}") == N_INCREMENTS

    def test_every_stage_ran_and_wrote(self, stressed):
        state, _, _ = stressed
        for index in range(N_STAGES):
            assert state[f"out{index}"] == index

    def test_all_spans_closed_with_monotonic_bounds(self, stressed):
        _, _, spans = stressed
        run_span = spans.span("run", kind="run")
        all_spans = spans.spans()
        assert len(all_spans) == 1 + 2 * N_STAGES
        for span in all_spans:
            assert span.end is not None, span
            assert span.start <= span.end, span
            assert run_span.start <= span.start
            assert span.end <= run_span.end

    def test_attempts_nest_inside_their_stage(self, stressed):
        _, _, spans = stressed
        by_id = {span.span_id: span for span in spans.spans()}
        attempts = spans.spans(kind="attempt")
        assert len(attempts) == N_STAGES
        for attempt in attempts:
            stage = by_id[attempt.parent_id]
            assert stage.kind == "stage"
            assert stage.name == attempt.name
            assert stage.start <= attempt.start <= attempt.end
            assert attempt.end <= stage.end
            assert attempt.thread_id == stage.thread_id

    def test_per_stage_event_order_is_monotonic(self, stressed):
        _, _, spans = stressed
        for index in range(N_STAGES):
            name = f"s{index:02d}"
            stamps = [event.monotonic for event in spans.events
                      if event.stage == name]
            assert stamps == sorted(stamps)
            kinds = [event.kind for event in spans.events
                     if event.stage == name]
            assert kinds == ["stage_start", "stage_attempt",
                             "stage_end"]

    def test_engine_metrics_cover_every_stage(self, stressed):
        _, registry, _ = stressed
        outcomes = registry.get("engine.stage_outcomes_total")
        for index in range(N_STAGES):
            assert outcomes.value(stage=f"s{index:02d}",
                                  status="ok") == pytest.approx(1.0)
        durations = registry.get("engine.stage_duration_seconds")
        total = sum(series["count"]
                    for series in durations._snapshot_series())
        assert total == N_STAGES


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------


def _two_stage_pipeline():
    pipeline = DecisionPipeline("profiled")
    pipeline.add_data(
        "produce",
        lambda s: s.update(data=[float(i) for i in range(20000)])
        or "ok",
        reads=(), writes=("data",))
    pipeline.add_analytics(
        "consume",
        lambda s: s.update(total=sum(s["data"])) or "ok",
        reads=("data",), writes=("total",))
    return pipeline


class TestProfiling:
    def test_profile_attaches_per_stage_numbers(self):
        with use_registry():
            _, report = _two_stage_pipeline().run(profile=True)
        assert sorted(report.profiles) == ["consume", "produce"]
        produce = report.profile("produce")
        assert {"stage", "layer", "wall_seconds", "cpu_seconds",
                "queue_wait_seconds", "net_alloc_bytes",
                "peak_alloc_bytes"} <= set(produce)
        assert produce["layer"] == "data"
        assert produce["wall_seconds"] > 0.0
        assert produce["queue_wait_seconds"] >= 0.0
        # 20k floats cost well over 100 KiB
        assert produce["peak_alloc_bytes"] > 100_000
        assert report.profile("consume")["wall_seconds"] > 0.0

    def test_profile_off_by_default(self):
        with use_registry():
            _, report = _two_stage_pipeline().run()
        assert report.profiles == {}
        with pytest.raises(KeyError, match="profile=True"):
            report.profile("produce")

    def test_profile_lines_in_render(self):
        with use_registry():
            _, report = _two_stage_pipeline().run(profile=True)
        rendered = report.render()
        assert "profile (wall / cpu / queue-wait / net alloc):" \
            in rendered
        assert "produce:" in rendered

    def test_profile_respects_preexisting_tracemalloc(self):
        already_tracing = tracemalloc.is_tracing()
        if not already_tracing:
            tracemalloc.start()
        try:
            with use_registry():
                _, report = _two_stage_pipeline().run(profile=True)
            assert tracemalloc.is_tracing()
            assert report.profile("produce")["peak_alloc_bytes"] > 0
        finally:
            if not already_tracing:
                tracemalloc.stop()

    def test_profile_under_concurrency(self):
        pipeline = DecisionPipeline("profiled-parallel")
        for index in range(4):
            pipeline.add_analytics(
                f"p{index}",
                lambda s, i=index: s.update(**{f"r{i}": i}) or "ok",
                reads=(), writes=(f"r{index}",))
        with use_registry():
            _, report = pipeline.run(profile=True, max_workers=4)
        assert len(report.profiles) == 4
        for profile in report.profiles.values():
            assert profile["wall_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# tee tracer
# ---------------------------------------------------------------------------


class TestTeeTracer:
    def test_fans_out_and_survives_broken_child(self):
        class Broken:
            def on_event(self, event):
                raise RuntimeError("observer bug")

        spans = SpanTracer()
        tee = TeeTracer(Broken(), spans)
        pipeline = DecisionPipeline("tee")
        pipeline.add_data("only", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        with use_registry():
            pipeline.run(tracer=tee)
        assert spans.span("only").status == "ok"

    def test_forwards_inject_without_swallowing(self):
        faults = FaultInjector().fail("only", times=1)
        spans = SpanTracer()
        tee = TeeTracer(faults, spans)
        pipeline = DecisionPipeline("tee-inject")
        pipeline.add_data("only", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",), retries=1,
                          backoff=0.0)
        with use_registry():
            pipeline.run(tracer=tee)
        assert faults.injected == 1
        assert [s.status for s in spans.spans(kind="attempt")] == \
            ["retry", "ok"]


# ---------------------------------------------------------------------------
# the repro.trace CLI
# ---------------------------------------------------------------------------


class TestTraceCli:
    def test_demo_exports_valid_chrome_trace(self, tmp_path, capsys):
        from repro.trace import main

        trace_path = tmp_path / "demo.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(["--demo", "-o", str(trace_path),
                     "--metrics", str(metrics_path)])
        assert code == 0
        document = json.loads(trace_path.read_text())
        names = {event["name"]
                 for event in document["traceEvents"]}
        assert {"run", "collect", "repair", "detect", "act"} <= names
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["engine.runs_total"]["series"]
        assert "wrote" in capsys.readouterr().out

    def test_script_mode_traces_user_pipeline(self, tmp_path):
        from repro.trace import main

        script = tmp_path / "user_script.py"
        script.write_text(
            "from repro import DecisionPipeline\n"
            "import sys\n"
            "pipeline = DecisionPipeline('scripted')\n"
            "pipeline.add_data('a', lambda s: s.update(x=1) or 'ok',\n"
            "                  reads=(), writes=('x',))\n"
            "pipeline.add_decision('b',\n"
            "    lambda s: s.update(y=s['x'] + len(sys.argv)) or 'ok',\n"
            "    reads=('x',), writes=('y',))\n"
            "pipeline.run()\n")
        trace_path = tmp_path / "trace.json"
        code = main(["-o", str(trace_path), "--profile", str(script),
                     "extra-arg"])
        assert code == 0
        document = json.loads(trace_path.read_text())
        stages = {event["name"]
                  for event in document["traceEvents"]
                  if event.get("cat") == "stage"}
        assert stages == {"a", "b"}

    def test_capture_restores_run_and_registry(self):
        from repro.trace import TraceCapture

        original_run = DecisionPipeline.run
        original_registry = get_registry()
        with TraceCapture() as capture:
            assert DecisionPipeline.run is not original_run
            assert get_registry() is capture.registry
        assert DecisionPipeline.run is original_run
        assert get_registry() is original_registry

    def test_rejects_script_and_demo_together(self, tmp_path):
        from repro.trace import main

        with pytest.raises(SystemExit):
            main(["--demo", "whatever.py"])
        with pytest.raises(SystemExit):
            main([])


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        os.makedirs(os.path.dirname(FIXTURE), exist_ok=True)
        with open(FIXTURE, "w", encoding="utf-8") as handle:
            json.dump(build_golden(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {FIXTURE}")
    else:
        print("usage: python tests/test_observability.py --regen")
