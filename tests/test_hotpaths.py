"""Equivalence tests for the E26 hot-path kernels.

Each vectorized/indexed kernel must return the same results as the
brute-force implementation it replaced; the brute-force paths are kept
in the library as private reference oracles
(``RoadNetwork._candidate_edges_scan``, ``RoadNetwork._nearest_node_scan``,
``HmmMapMatcher._match_reference``,
``repro.decision.stochastic._dominance_prune_pairwise``).
"""

import math

import numpy as np
import pytest

from repro import RoadNetwork
from repro._validation import trapezoid
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.decision import StochasticRouter, RiskAverseUtility
from repro.decision.stochastic import (
    _dominance_prune_pairwise,
    dominance_prune,
    first_order_dominates,
    second_order_dominates,
)
from repro.governance.fusion import HmmMapMatcher
from repro.governance.uncertainty import Histogram, PathCentricModel


@pytest.fixture(scope="module")
def networks():
    return [
        RoadNetwork.grid(7, 5, spacing=0.8),
        RoadNetwork.random_geometric(150, 1.8,
                                     rng=np.random.default_rng(11)),
    ]


class TestSpatialIndex:
    def test_candidate_edges_matches_scan(self, networks):
        rng = np.random.default_rng(0)
        for network in networks:
            for _ in range(150):
                point = tuple(rng.uniform(-1.0, 11.0, 2))
                radius = float(rng.uniform(0.05, 2.5))
                fast = network.candidate_edges(point, radius)
                slow = network._candidate_edges_scan(point, radius)
                assert {c[:2] for c in fast} == {c[:2] for c in slow}
                slow_by_edge = {c[:2]: c[2:] for c in slow}
                for u, v, distance, fraction in fast:
                    ref_distance, ref_fraction = slow_by_edge[(u, v)]
                    assert distance == pytest.approx(ref_distance,
                                                     abs=1e-9)
                    assert fraction == pytest.approx(ref_fraction,
                                                     abs=1e-9)
                distances = [c[2] for c in fast]
                assert distances == sorted(distances)

    def test_nearest_node_matches_scan(self, networks):
        rng = np.random.default_rng(1)
        for network in networks:
            for _ in range(200):
                point = tuple(rng.uniform(-1.0, 11.0, 2))
                fast = network.nearest_node(point)
                slow = network._nearest_node_scan(point)
                if fast != slow:  # only acceptable on exact ties
                    fx, fy = network.position(fast)
                    sx, sy = network.position(slow)
                    fast_distance = math.hypot(point[0] - fx,
                                               point[1] - fy)
                    slow_distance = math.hypot(point[0] - sx,
                                               point[1] - sy)
                    assert fast_distance == pytest.approx(slow_distance,
                                                          abs=1e-9)

    def test_index_rebuilds_after_mutation(self):
        network = RoadNetwork.grid(3, 3)
        assert network.candidate_edges((0.5, 0.0), 0.2)
        network.graph.add_node("new", pos=(10.0, 10.0))
        network.graph.add_edge((2, 2), "new", length=1.0)
        # The new far-away edge is only findable if the index rebuilt.
        found = network.candidate_edges((9.0, 9.0), 3.0)
        assert any("new" in (u, v) for u, v, _, _ in found)
        assert network.nearest_node((10.2, 10.2)) == "new"

    def test_invalidate_geometry_after_moving_a_node(self):
        network = RoadNetwork.grid(3, 3)
        network.nearest_node((0.0, 0.0))  # build the index
        network.graph.nodes[(0, 0)]["pos"] = (-5.0, -5.0)
        network.invalidate_geometry()
        assert network.nearest_node((-4.8, -4.9)) == (0, 0)

    def test_bounded_dijkstra_exact_within_cutoff(self, networks):
        for network in networks:
            source = network.nodes()[0]
            full = network.dijkstra_all(source)
            bounded = network.dijkstra_all(source, cutoff=2.0)
            for node, distance in bounded.items():
                assert distance == pytest.approx(full[node])
                assert distance <= 2.0 + 1e-12
            inside = {n for n, d in full.items() if d <= 2.0}
            assert inside <= set(bounded)

    def test_dijkstra_array_matches_dict(self, networks):
        for network in networks:
            index_of, nodes = network.node_index()
            assert [index_of[node] for node in nodes] == \
                list(range(network.n_nodes))
            for cutoff in (None, 2.5):
                source = nodes[1]
                as_dict = network.dijkstra_all(source, cutoff=cutoff)
                as_array = network.dijkstra_array(source, cutoff=cutoff)
                assert as_array.shape == (network.n_nodes,)
                for node in nodes:
                    expected = as_dict.get(node, math.inf)
                    assert as_array[index_of[node]] == \
                        pytest.approx(expected)


@pytest.fixture(scope="module")
def fleet():
    network = RoadNetwork.grid(8, 8)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator,
                                    rng=np.random.default_rng(1))
    return network, generator


class TestVectorizedViterbi:
    def test_match_equals_reference(self, fleet):
        network, generator = fleet
        for noise in (0.05, 0.15, 0.3):
            trips = generator.generate(6, noise_sigma=noise,
                                       sample_interval=0.4, min_hops=5)
            matcher = HmmMapMatcher(network, sigma=max(noise, 0.1),
                                    beta=0.5, candidate_radius=1.0)
            for _, trajectory in trips:
                assert matcher.match(trajectory) == \
                    matcher._match_reference(trajectory)

    def test_bounded_equals_unbounded_cutoff(self, fleet):
        network, generator = fleet
        trips = generator.generate(5, noise_sigma=0.2,
                                   sample_interval=0.5, min_hops=5)
        bounded = HmmMapMatcher(network, sigma=0.2, beta=0.5,
                                candidate_radius=1.0)
        unbounded = HmmMapMatcher(network, sigma=0.2, beta=0.5,
                                  candidate_radius=1.0,
                                  beta_cutoff=None)
        for _, trajectory in trips:
            assert bounded.match(trajectory) == \
                unbounded.match(trajectory)

    def test_match_many_matches_loop(self, fleet):
        network, generator = fleet
        trips = generator.generate(4, noise_sigma=0.1,
                                   sample_interval=0.4, min_hops=4)
        trajectories = [trajectory for _, trajectory in trips]
        matcher = HmmMapMatcher(network, sigma=0.1, beta=0.5)
        batched = matcher.match_many(trajectories)
        assert batched == [matcher.match(t) for t in trajectories]

    def test_distance_cache_is_bounded_with_counters(self, fleet):
        network, generator = fleet
        trips = generator.generate(6, noise_sigma=0.1,
                                   sample_interval=0.4, min_hops=5)
        matcher = HmmMapMatcher(network, sigma=0.1, beta=0.5,
                                distance_cache_size=5)
        matcher.match_many([trajectory for _, trajectory in trips])
        info = matcher.cache_info()
        assert info["size"] <= 5
        assert info["maxsize"] == 5
        assert info["hits"] > 0 and info["misses"] > 0
        matcher.clear_cache()
        assert matcher.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "maxsize": 5}

    def test_cache_upgrade_on_larger_cutoff(self, fleet):
        network, _ = fleet
        matcher = HmmMapMatcher(network, sigma=0.1)
        node = network.nodes()[0]
        small = matcher._distances_from(node, cutoff=1.0)
        large = matcher._distances_from(node, cutoff=4.0)
        assert np.isfinite(large).sum() > np.isfinite(small).sum()
        # Smaller request now hits the upgraded entry.
        hits_before = matcher.cache_info()["hits"]
        matcher._distances_from(node, cutoff=2.0)
        assert matcher.cache_info()["hits"] == hits_before + 1


def random_histograms(rng, k):
    candidates = []
    for _ in range(k):
        mean = rng.uniform(3.0, 12.0)
        std = rng.uniform(0.2, 2.0)
        samples = rng.normal(mean, std, 200)
        candidates.append(Histogram.from_samples(
            samples, n_bins=int(rng.integers(5, 30))))
    return candidates


class TestDominanceKernel:
    @pytest.mark.parametrize("order", [1, 2])
    def test_kernel_matches_pairwise_oracle(self, order):
        rng = np.random.default_rng(7)
        for _ in range(25):
            candidates = random_histograms(rng, int(rng.integers(2, 48)))
            assert dominance_prune(candidates, order=order) == \
                _dominance_prune_pairwise(candidates, order=order)

    def test_fsd_kernel_consistent_with_public_pairwise(self):
        rng = np.random.default_rng(8)
        candidates = random_histograms(rng, 12)
        survivors = set(dominance_prune(candidates, order=1))
        for j, candidate in enumerate(candidates):
            pairwise_dominated = any(
                first_order_dominates(other, candidate)
                for i, other in enumerate(candidates) if i != j
            )
            assert (j not in survivors) == pairwise_dominated

    def test_ssd_exact_is_sharper_than_fsd(self):
        rng = np.random.default_rng(9)
        candidates = random_histograms(rng, 24)
        fsd = set(dominance_prune(candidates, order=1))
        ssd = set(dominance_prune(candidates, order=2))
        assert ssd <= fsd

    def test_second_order_exactness(self):
        # A mean-preserving spread: SSD must prefer the tight one, and
        # the exact criterion must see it even when the old one-grid-step
        # Riemann slack would have hidden it.
        tight = Histogram(5.0, 0.1, [1.0])
        wide = Histogram.mixture(
            [Histogram(4.0, 0.1, [1.0]), Histogram(6.0, 0.1, [1.0])],
            [0.5, 0.5])
        assert second_order_dominates(tight, wide)
        assert not second_order_dominates(wide, tight)

    def test_edge_cases(self):
        assert dominance_prune([]) == []
        single = random_histograms(np.random.default_rng(0), 1)
        assert dominance_prune(single) == [0]
        with pytest.raises(ValueError):
            dominance_prune(single, order=3)
        with pytest.raises(TypeError):
            dominance_prune(["not a histogram"])


@pytest.fixture(scope="module")
def served_router():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.3, sigma_independent=0.1,
        rng=np.random.default_rng(1))
    origin, destination = (0, 0), (5, 5)
    candidates = network.k_shortest_paths(origin, destination, 6)
    rng = np.random.default_rng(2)
    trips = []
    for _ in range(60):
        for path in candidates:
            edges = network.path_edges(path)
            times = simulator.sample_edge_times(
                edges, departure_minute=480, rng=rng)
            trips.append((path, times, 480.0))
    model = PathCentricModel(min_support=10,
                             max_subpath_edges=10).fit(trips)
    return network, model, origin, destination


class TestRouteMany:
    def test_batch_matches_single_queries(self, served_router):
        network, model, origin, destination = served_router
        utility = RiskAverseUtility(scale=20.0)
        cold = StochasticRouter(network, model, n_candidates=6)
        warm = StochasticRouter(network, model, n_candidates=6)
        queries = [(origin, destination, 480.0)] * 5 + \
            [(origin, (3, 4), 481.0)] * 3
        batch = warm.route_many(queries, utility)
        for query, result in zip(queries, batch):
            try:
                expected = cold.best_path(query[0], query[1], utility,
                                          departure_minute=query[2])
            except ValueError:
                assert result is None
                continue
            assert result[0] == expected[0]
            assert result[2] == pytest.approx(expected[2])

    def test_memo_hits_on_repeats(self, served_router):
        network, model, origin, destination = served_router
        utility = RiskAverseUtility(scale=20.0)
        router = StochasticRouter(network, model, n_candidates=6)
        router.route_many([(origin, destination, 480.0)] * 10, utility)
        info = router.cache_info()
        assert info["hits"] > 0
        assert info["path_memo_size"] >= 1
        assert info["distribution_memo_size"] >= 1
        router.clear_cache()
        assert router.cache_info()["hits"] == 0

    def test_unroutable_query_yields_none(self, served_router):
        network, model, origin, destination = served_router

        class Uncovered:
            def path_distribution(self, path, minute):
                raise KeyError("nothing observed")

        router = StochasticRouter(network, Uncovered())
        results = router.route_many([(origin, destination, 480.0)],
                                    RiskAverseUtility(scale=20.0))
        assert results == [None]

    def test_memo_disabled_with_zero_size(self, served_router):
        network, model, origin, destination = served_router
        router = StochasticRouter(network, model, n_candidates=6,
                                  memo_size=0)
        router.best_path(origin, destination,
                         RiskAverseUtility(scale=20.0),
                         departure_minute=480.0)
        info = router.cache_info()
        assert info["path_memo_size"] == 0
        assert info["distribution_memo_size"] == 0


class TestTrapezoidShim:
    def test_matches_known_integral(self):
        grid = np.linspace(0.0, 1.0, 1001)
        assert float(trapezoid(grid ** 2, grid)) == \
            pytest.approx(1.0 / 3.0, abs=1e-5)
