"""Tests for contrastive and masked representation learning."""

import numpy as np
import pytest

from repro.datasets.classification import waveform_classification_dataset
from repro.analytics.representation import (
    ContrastiveEncoder,
    LinearProbe,
    MaskedAutoencoderPretrainer,
)

DATASET_KWARGS = dict(phase_jitter=0.2)


@pytest.fixture(scope="module")
def pools():
    unlabeled, _ = waveform_classification_dataset(
        100, 96, 4, rng=np.random.default_rng(0), **DATASET_KWARGS)
    Xtr, ytr = waveform_classification_dataset(
        8, 96, 4, rng=np.random.default_rng(1), **DATASET_KWARGS)
    Xte, yte = waveform_classification_dataset(
        25, 96, 4, rng=np.random.default_rng(2), **DATASET_KWARGS)
    return unlabeled, Xtr, ytr, Xte, yte


class TestMaskedPretrainer:
    def test_embedding_shape(self, pools):
        unlabeled, Xtr, _, _, _ = pools
        encoder = MaskedAutoencoderPretrainer(
            n_components=10, n_epochs=20,
            rng=np.random.default_rng(3)).fit(unlabeled)
        assert encoder.transform(Xtr).shape == (len(Xtr), 10)
        assert encoder.transform(Xtr[0]).shape == (1, 10)

    def test_reconstruction_better_than_untrained_error(self, pools):
        unlabeled, _, _, Xte, _ = pools
        encoder = MaskedAutoencoderPretrainer(
            n_components=12, n_epochs=80,
            rng=np.random.default_rng(4)).fit(unlabeled)
        # Standardized data has unit variance, so an uninformative
        # reconstruction has MSE ~1.
        assert encoder.reconstruction_error(Xte) < 0.6

    def test_pretraining_beats_raw_few_label_probe(self, pools):
        """E10's claim: pretrained representations reduce the labeled
        data needed for a downstream task."""
        unlabeled, _, _, Xte, yte = pools
        Xtr, ytr = waveform_classification_dataset(
            15, 96, 4, rng=np.random.default_rng(5), **DATASET_KWARGS)
        encoder = MaskedAutoencoderPretrainer(
            n_components=16, n_hidden=48, n_epochs=150,
            rng=np.random.default_rng(6)).fit(unlabeled)
        pretrained = LinearProbe().fit(
            encoder.transform(Xtr), ytr).score(encoder.transform(Xte), yte)
        raw = LinearProbe().fit(Xtr, ytr).score(Xte, yte)
        assert pretrained > raw

    def test_requires_fit(self, pools):
        _, Xtr, _, _, _ = pools
        with pytest.raises(RuntimeError):
            MaskedAutoencoderPretrainer().transform(Xtr)

    def test_rejects_1d_pool(self):
        with pytest.raises(ValueError):
            MaskedAutoencoderPretrainer().fit(np.zeros(10))


class TestContrastiveEncoder:
    def test_embedding_shape(self, pools):
        unlabeled, Xtr, _, _, _ = pools
        encoder = ContrastiveEncoder(
            n_components=8, n_epochs=15,
            rng=np.random.default_rng(7)).fit(unlabeled)
        assert encoder.transform(Xtr).shape == (len(Xtr), 8)

    def test_same_class_windows_closer_than_random(self, pools):
        unlabeled, _, _, Xte, yte = pools
        encoder = ContrastiveEncoder(
            n_components=12, n_epochs=50,
            rng=np.random.default_rng(8)).fit(unlabeled)
        embeddings = encoder.transform(Xte)
        embeddings /= np.maximum(
            np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-9)
        similarity = embeddings @ embeddings.T
        same = yte[:, None] == yte[None, :]
        off_diagonal = ~np.eye(len(yte), dtype=bool)
        within = similarity[same & off_diagonal].mean()
        between = similarity[~same].mean()
        assert within > between

    def test_probe_above_chance(self, pools):
        unlabeled, Xtr, ytr, Xte, yte = pools
        encoder = ContrastiveEncoder(
            n_components=12, n_epochs=50,
            rng=np.random.default_rng(9)).fit(unlabeled)
        accuracy = LinearProbe().fit(
            encoder.transform(Xtr), ytr).score(encoder.transform(Xte), yte)
        assert accuracy > 0.4  # 4 classes -> chance is 0.25

    def test_curriculum_flag_changes_training(self, pools):
        unlabeled, _, _, _, _ = pools
        with_curriculum = ContrastiveEncoder(
            n_epochs=10, curriculum=True,
            rng=np.random.default_rng(10)).fit(unlabeled[:40])
        without = ContrastiveEncoder(
            n_epochs=10, curriculum=False,
            rng=np.random.default_rng(10)).fit(unlabeled[:40])
        assert not np.allclose(with_curriculum._weights, without._weights)

    def test_minimum_pool(self):
        with pytest.raises(ValueError):
            ContrastiveEncoder().fit(np.zeros((2, 20)))

    def test_weak_labels_change_training(self, pools):
        """The weakly-supervised positive sampling of [31] produces a
        genuinely different encoder."""
        unlabeled, _, _, _, _ = pools
        labels = np.arange(len(unlabeled)) % 4
        plain = ContrastiveEncoder(
            n_epochs=10, rng=np.random.default_rng(30)).fit(
                unlabeled[:60])
        weak = ContrastiveEncoder(
            n_epochs=10, rng=np.random.default_rng(30)).fit(
                unlabeled[:60], weak_labels=labels[:60])
        assert not np.allclose(plain._weights, weak._weights)

    def test_weak_labels_validation(self, pools):
        unlabeled, _, _, _, _ = pools
        with pytest.raises(ValueError):
            ContrastiveEncoder().fit(unlabeled[:20],
                                     weak_labels=np.zeros(5))


class TestLinearProbe:
    def test_perfect_on_separable(self):
        rng = np.random.default_rng(11)
        a = rng.normal(0, 0.2, size=(30, 4)) + np.array([3, 0, 0, 0])
        b = rng.normal(0, 0.2, size=(30, 4)) - np.array([3, 0, 0, 0])
        X = np.vstack([a, b])
        y = np.array([0] * 30 + [1] * 30)
        probe = LinearProbe().fit(X, y)
        assert probe.score(X, y) == 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LinearProbe().fit(np.zeros((10, 3)), np.zeros(10))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            LinearProbe().predict(np.zeros((3, 2)))
