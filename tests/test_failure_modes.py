"""Failure-injection tests: pathological inputs must fail loudly.

"Errors should never pass silently."  Each test feeds a public API a
degenerate input — empty, constant, single-point, non-finite — and
checks that the library either handles it gracefully (documented
behaviour) or raises a clear standard exception, never returning silent
garbage.
"""

import numpy as np
import pytest

from repro import (
    DecisionPipeline,
    FaultInjector,
    RoadNetwork,
    RunDeadlineExceeded,
    SpanTracer,
    StageFailure,
    TimeSeries,
)
from repro.observability.metrics import use_registry
from repro.analytics.anomaly import AutoencoderDetector, SpectralResidualDetector
from repro.analytics.forecasting import (
    ARForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.analytics.metrics import best_f1, mae, roc_auc
from repro.governance.imputation import KalmanImputer, impute_linear
from repro.governance.uncertainty import GaussianMixture, Histogram


class TestConstantSeries:
    """A constant series is legal data and must not produce NaNs."""

    CONSTANT = TimeSeries(np.full(300, 5.0))

    def test_forecasters_predict_the_constant(self):
        for forecaster in (NaiveForecaster(), ARForecaster(n_lags=4),
                           SeasonalNaiveForecaster(10)):
            prediction = forecaster.forecast(self.CONSTANT, 5)
            assert np.allclose(prediction, 5.0, atol=0.2)

    def test_standardized_handles_zero_variance(self):
        scaled, mean, std = self.CONSTANT.standardized()
        assert np.isfinite(scaled.values).all()

    def test_detector_scores_finite(self):
        detector = AutoencoderDetector(window=16, n_epochs=5,
                                       rng=np.random.default_rng(0))
        detector.fit(self.CONSTANT)
        scores = detector.score(self.CONSTANT)
        assert np.isfinite(scores).all()

    def test_imputers_fill_with_the_constant(self):
        gappy = self.CONSTANT.corrupt(0.3, np.random.default_rng(1))
        filled = impute_linear(gappy)
        assert np.allclose(filled.values, 5.0)

    def test_histogram_of_identical_samples(self):
        histogram = Histogram.from_samples(np.full(50, 3.0))
        assert histogram.mean() == pytest.approx(3.0, abs=1e-6)
        assert np.isfinite(histogram.quantile(0.5))


class TestNonFiniteInputs:
    def test_timeseries_treats_nan_as_missing_not_data(self):
        series = TimeSeries([1.0, np.nan, 3.0])
        assert series.missing_fraction() == pytest.approx(1 / 3)

    def test_forecaster_rejects_nan(self):
        with pytest.raises(ValueError):
            NaiveForecaster().fit(TimeSeries([1.0, np.nan, 3.0]))

    def test_detector_rejects_nan(self):
        with pytest.raises(ValueError):
            SpectralResidualDetector().score(
                TimeSeries([1.0, np.nan, 3.0]))

    def test_probability_vector_rejects_inf(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, [np.inf, 1.0])

    def test_metrics_propagate_rather_than_hide_nan(self):
        # A nan prediction must surface in the metric, not vanish.
        assert np.isnan(mae([1.0, 2.0], [np.nan, 2.0]))


class TestDegenerateSizes:
    def test_single_observation_series(self):
        series = TimeSeries([7.0])
        assert len(series) == 1
        with pytest.raises(ValueError):
            series.split(0.5)  # cannot split a single point

    def test_two_point_histogram(self):
        histogram = Histogram.from_samples([1.0, 2.0], n_bins=2)
        assert histogram.probabilities.sum() == pytest.approx(1.0)

    def test_gmm_more_components_than_samples(self):
        with pytest.raises(ValueError):
            GaussianMixture.fit([1.0, 2.0], n_components=5)

    def test_holt_winters_one_period_exactly(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(96).fit(TimeSeries(np.zeros(96)))

    def test_kalman_on_two_points(self):
        filled = KalmanImputer(2).impute(TimeSeries([1.0, np.nan, 2.0]))
        assert filled.is_complete()
        assert np.isfinite(filled.values).all()

    def test_smallest_legal_grid(self):
        network = RoadNetwork.grid(2, 2)
        assert network.shortest_path((0, 0), (1, 1))


class TestLabelEdgeCases:
    def test_all_positive_labels(self):
        with pytest.raises(ValueError):
            roc_auc([True, True], [0.1, 0.9])

    def test_single_anomaly_best_f1(self):
        labels = np.zeros(50, dtype=bool)
        labels[25] = True
        scores = np.zeros(50)
        scores[25] = 1.0
        f1, threshold = best_f1(labels, scores)
        assert f1 == 1.0

    def test_anomaly_at_series_boundary(self):
        rng = np.random.default_rng(2)
        values = np.sin(np.arange(400) / 20) + 0.05 * rng.normal(size=400)
        values[0] += 5.0
        values[-1] += 5.0
        detector = AutoencoderDetector(window=16, n_epochs=20,
                                       rng=np.random.default_rng(3))
        detector.fit(TimeSeries(np.sin(np.arange(400) / 20)))
        scores = detector.score(TimeSeries(values))
        # Boundary anomalies are covered by fewer windows but must
        # still stand out.
        assert scores[0] > np.median(scores) * 3
        assert scores[-1] > np.median(scores) * 3


class TestAdversarialDistributions:
    def test_extreme_outlier_in_histogram_fit(self):
        samples = np.concatenate([np.random.default_rng(4).normal(
            0, 1, 500), [1e6]])
        histogram = Histogram.from_samples(samples, n_bins=30)
        # The histogram survives, and the quantiles reflect the bulk.
        assert np.isfinite(histogram.mean())
        assert histogram.quantile(0.5) < 1e5

    def test_convolving_wildly_different_scales(self):
        narrow = Histogram.from_samples(
            np.random.default_rng(5).normal(0, 0.001, 200))
        wide = Histogram.from_samples(
            np.random.default_rng(6).normal(0, 1000.0, 200))
        total = narrow.convolve(wide)
        assert total.probabilities.sum() == pytest.approx(1.0)
        assert total.std() == pytest.approx(wide.std(), rel=0.2)


class TestEngineFailureTelemetry:
    """Every failure policy leaves a matching metric series and span.

    The engine must not just *survive* failures — it must account for
    them: ``engine.stage_outcomes_total{stage, status}`` counts every
    terminal outcome and the :class:`SpanTracer` records the matching
    span status, for each of fail, skip, fallback, retry, timeout and
    deadline-cancellation.
    """

    @staticmethod
    def _run(pipeline, tracer, expect=None, **kwargs):
        with use_registry() as registry:
            if expect is None:
                pipeline.run(tracer=tracer, **kwargs)
            else:
                with pytest.raises(expect):
                    pipeline.run(tracer=tracer, **kwargs)
        return registry

    def test_fail_policy_counts_failed_outcome(self):
        spans = SpanTracer()
        pipeline = DecisionPipeline()
        pipeline.add_data(
            "broken",
            lambda s: (_ for _ in ()).throw(ValueError("boom")),
            reads=(), writes=("x",))
        registry = self._run(pipeline, spans, expect=StageFailure)
        outcomes = registry.get("engine.stage_outcomes_total")
        assert outcomes.value(stage="broken", status="failed") == 1.0
        assert spans.span("broken").status == "failed"
        assert spans.spans(kind="attempt")[0].status == "error"
        assert spans.span("run", kind="run").status == "failed"
        assert registry.get("engine.runs_total").value(
            status="failed") == 1.0

    def test_skip_policy_counts_skipped_outcome(self):
        spans = SpanTracer()
        pipeline = DecisionPipeline()
        pipeline.add_data(
            "optional",
            lambda s: (_ for _ in ()).throw(ValueError("boom")),
            reads=(), writes=("x",), on_error="skip")
        registry = self._run(pipeline, spans)
        outcomes = registry.get("engine.stage_outcomes_total")
        assert outcomes.value(stage="optional", status="skipped") == 1.0
        assert spans.span("optional").status == "skipped"
        assert spans.span("run", kind="run").status == "ok"

    def test_fallback_policy_counts_fallback_outcome(self):
        spans = SpanTracer()
        pipeline = DecisionPipeline()
        pipeline.add_data(
            "primary",
            lambda s: (_ for _ in ()).throw(ValueError("boom")),
            reads=(), writes=("x",), on_error="fallback",
            fallback=lambda s: s.update(x=0) or "safe default")
        registry = self._run(pipeline, spans)
        outcomes = registry.get("engine.stage_outcomes_total")
        assert outcomes.value(stage="primary", status="fallback") == 1.0
        assert spans.span("primary").status == "fallback"
        assert spans.spans(kind="fallback")[0].status == "ok"

    def test_retry_counts_attempts_and_retries(self):
        spans = SpanTracer()
        faults = FaultInjector().fail("flaky", times=2).forward_to(spans)
        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",), retries=2, backoff=0)
        registry = self._run(pipeline, faults)
        assert registry.get("engine.stage_attempts_total").value(
            stage="flaky") == 3.0
        assert registry.get("engine.stage_retries_total").value(
            stage="flaky") == 2.0
        assert registry.get("engine.stage_outcomes_total").value(
            stage="flaky", status="ok") == 1.0
        assert registry.get("engine.faults_injected_total").value(
            stage="flaky", kind="fail") == 2.0
        assert [a.status for a in spans.spans(kind="attempt")] == \
            ["retry", "retry", "ok"]
        assert spans.span("flaky").status == "ok"

    def test_timeout_counts_timed_out_outcome(self):
        spans = SpanTracer()
        faults = FaultInjector().timeout("hang").forward_to(spans)
        pipeline = DecisionPipeline()
        pipeline.add_data("hang", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        registry = self._run(pipeline, faults, expect=StageFailure)
        outcomes = registry.get("engine.stage_outcomes_total")
        assert outcomes.value(stage="hang", status="timed_out") == 1.0
        assert spans.span("hang").status == "timed_out"
        assert spans.spans(kind="attempt")[0].status == "timeout"
        assert registry.get("engine.runs_total").value(
            status="failed") == 1.0

    def test_deadline_cancel_counts_cancelled_outcomes(self):
        spans = SpanTracer()
        faults = FaultInjector().delay("first", 0.1).forward_to(spans)

        def stage(key):
            def run(s):
                s[key] = True
                return key
            return run

        pipeline = DecisionPipeline()
        pipeline.add_data("first", stage("a"))
        pipeline.add_governance("second", stage("b"))
        pipeline.add_decision("third", stage("c"))
        registry = self._run(pipeline, faults,
                             expect=RunDeadlineExceeded, deadline=0.03)
        outcomes = registry.get("engine.stage_outcomes_total")
        for name in ("first", "second", "third"):
            assert outcomes.value(stage=name, status="cancelled") == 1.0
            assert spans.span(name).status == "cancelled"
        assert spans.span("run", kind="run").status == "cancelled"
        assert registry.get("engine.runs_total").value(
            status="deadline_exceeded") == 1.0

    def test_queue_wait_histogram_observes_every_stage(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("a", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        pipeline.add_decision("b", lambda s: s.update(y=s["x"]) or "ok",
                              reads=("x",), writes=("y",))
        with use_registry() as registry:
            pipeline.run()
        waits = registry.get("engine.stage_queue_wait_seconds")
        assert waits.count(stage="a") == 1
        assert waits.count(stage="b") == 1
