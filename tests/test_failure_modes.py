"""Failure-injection tests: pathological inputs must fail loudly.

"Errors should never pass silently."  Each test feeds a public API a
degenerate input — empty, constant, single-point, non-finite — and
checks that the library either handles it gracefully (documented
behaviour) or raises a clear standard exception, never returning silent
garbage.
"""

import numpy as np
import pytest

from repro import RoadNetwork, TimeSeries
from repro.analytics.anomaly import AutoencoderDetector, SpectralResidualDetector
from repro.analytics.forecasting import (
    ARForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.analytics.metrics import best_f1, mae, roc_auc
from repro.governance.imputation import KalmanImputer, impute_linear
from repro.governance.uncertainty import GaussianMixture, Histogram


class TestConstantSeries:
    """A constant series is legal data and must not produce NaNs."""

    CONSTANT = TimeSeries(np.full(300, 5.0))

    def test_forecasters_predict_the_constant(self):
        for forecaster in (NaiveForecaster(), ARForecaster(n_lags=4),
                           SeasonalNaiveForecaster(10)):
            prediction = forecaster.forecast(self.CONSTANT, 5)
            assert np.allclose(prediction, 5.0, atol=0.2)

    def test_standardized_handles_zero_variance(self):
        scaled, mean, std = self.CONSTANT.standardized()
        assert np.isfinite(scaled.values).all()

    def test_detector_scores_finite(self):
        detector = AutoencoderDetector(window=16, n_epochs=5,
                                       rng=np.random.default_rng(0))
        detector.fit(self.CONSTANT)
        scores = detector.score(self.CONSTANT)
        assert np.isfinite(scores).all()

    def test_imputers_fill_with_the_constant(self):
        gappy = self.CONSTANT.corrupt(0.3, np.random.default_rng(1))
        filled = impute_linear(gappy)
        assert np.allclose(filled.values, 5.0)

    def test_histogram_of_identical_samples(self):
        histogram = Histogram.from_samples(np.full(50, 3.0))
        assert histogram.mean() == pytest.approx(3.0, abs=1e-6)
        assert np.isfinite(histogram.quantile(0.5))


class TestNonFiniteInputs:
    def test_timeseries_treats_nan_as_missing_not_data(self):
        series = TimeSeries([1.0, np.nan, 3.0])
        assert series.missing_fraction() == pytest.approx(1 / 3)

    def test_forecaster_rejects_nan(self):
        with pytest.raises(ValueError):
            NaiveForecaster().fit(TimeSeries([1.0, np.nan, 3.0]))

    def test_detector_rejects_nan(self):
        with pytest.raises(ValueError):
            SpectralResidualDetector().score(
                TimeSeries([1.0, np.nan, 3.0]))

    def test_probability_vector_rejects_inf(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, [np.inf, 1.0])

    def test_metrics_propagate_rather_than_hide_nan(self):
        # A nan prediction must surface in the metric, not vanish.
        assert np.isnan(mae([1.0, 2.0], [np.nan, 2.0]))


class TestDegenerateSizes:
    def test_single_observation_series(self):
        series = TimeSeries([7.0])
        assert len(series) == 1
        with pytest.raises(ValueError):
            series.split(0.5)  # cannot split a single point

    def test_two_point_histogram(self):
        histogram = Histogram.from_samples([1.0, 2.0], n_bins=2)
        assert histogram.probabilities.sum() == pytest.approx(1.0)

    def test_gmm_more_components_than_samples(self):
        with pytest.raises(ValueError):
            GaussianMixture.fit([1.0, 2.0], n_components=5)

    def test_holt_winters_one_period_exactly(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(96).fit(TimeSeries(np.zeros(96)))

    def test_kalman_on_two_points(self):
        filled = KalmanImputer(2).impute(TimeSeries([1.0, np.nan, 2.0]))
        assert filled.is_complete()
        assert np.isfinite(filled.values).all()

    def test_smallest_legal_grid(self):
        network = RoadNetwork.grid(2, 2)
        assert network.shortest_path((0, 0), (1, 1))


class TestLabelEdgeCases:
    def test_all_positive_labels(self):
        with pytest.raises(ValueError):
            roc_auc([True, True], [0.1, 0.9])

    def test_single_anomaly_best_f1(self):
        labels = np.zeros(50, dtype=bool)
        labels[25] = True
        scores = np.zeros(50)
        scores[25] = 1.0
        f1, threshold = best_f1(labels, scores)
        assert f1 == 1.0

    def test_anomaly_at_series_boundary(self):
        rng = np.random.default_rng(2)
        values = np.sin(np.arange(400) / 20) + 0.05 * rng.normal(size=400)
        values[0] += 5.0
        values[-1] += 5.0
        detector = AutoencoderDetector(window=16, n_epochs=20,
                                       rng=np.random.default_rng(3))
        detector.fit(TimeSeries(np.sin(np.arange(400) / 20)))
        scores = detector.score(TimeSeries(values))
        # Boundary anomalies are covered by fewer windows but must
        # still stand out.
        assert scores[0] > np.median(scores) * 3
        assert scores[-1] > np.median(scores) * 3


class TestAdversarialDistributions:
    def test_extreme_outlier_in_histogram_fit(self):
        samples = np.concatenate([np.random.default_rng(4).normal(
            0, 1, 500), [1e6]])
        histogram = Histogram.from_samples(samples, n_bins=30)
        # The histogram survives, and the quantiles reflect the bulk.
        assert np.isfinite(histogram.mean())
        assert histogram.quantile(0.5) < 1e5

    def test_convolving_wildly_different_scales(self):
        narrow = Histogram.from_samples(
            np.random.default_rng(5).normal(0, 0.001, 200))
        wide = Histogram.from_samples(
            np.random.default_rng(6).normal(0, 1000.0, 200))
        total = narrow.convolve(wide)
        assert total.probabilities.sum() == pytest.approx(1.0)
        assert total.std() == pytest.approx(wide.std(), rel=0.2)
