"""Transactional stage execution, bounded runs and fault injection.

The engine's isolation guarantee: one attempt's writes (and
deletions) commit to shared state atomically on success and are
discarded on any failure — so a failed, retried, skipped, timed-out
or cancelled attempt provably leaves zero partial writes behind.
These tests drive that guarantee through the
:class:`~repro.core.faults.FaultInjector`, and cover the cache's
tombstone / deep-copy semantics and the structural function
fingerprint that make cached reruns byte-identical to live ones.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.core import (
    DecisionPipeline,
    FaultInjector,
    RunDeadlineExceeded,
    StageCache,
    StageFailure,
    StageTimeout,
)
from repro.core.cache import _function_fingerprint, fingerprint


def canonical(state):
    """Canonical bytes of a state dict (sorted keys) for equality."""
    return pickle.dumps([(k, state[k]) for k in sorted(state)])


# -- transactional commit ----------------------------------------------------


class TestTransactionalCommit:
    def test_failed_attempt_leaves_zero_partial_writes(self):
        def torn(s):
            s["partial_a"] = 1
            s["partial_b"] = 2
            raise RuntimeError("boom after writing")

        pipeline = DecisionPipeline()
        pipeline.add_data("seed", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        pipeline.add_governance("torn", torn, reads=(),
                                writes=("partial_a", "partial_b"))
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run()
        # The failing attempt's buffered writes were discarded: the
        # state carried by the failure equals the never-ran baseline.
        assert excinfo.value.state == {"x": 1}

    def test_skipped_stage_leaves_state_untouched(self):
        def torn(s):
            s["junk"] = 123
            del s["keep"]
            raise RuntimeError("fails after write and delete")

        baseline = DecisionPipeline()
        baseline.add_data("seed", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        base_state, _ = baseline.run({"keep": "yes"})

        pipeline = DecisionPipeline()
        pipeline.add_data("seed", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        pipeline.add_governance("torn", torn, reads=(),
                                writes=("junk", "keep"),
                                on_error="skip")
        state, report = pipeline.run({"keep": "yes"})
        assert report.record("torn").status == "skipped"
        assert state == base_state == {"keep": "yes", "x": 1}

    def test_retry_sees_pre_attempt_state(self):
        observed = []

        def flaky(s):
            observed.append("scratch" in s)
            s["scratch"] = True
            if len(observed) == 1:
                raise RuntimeError("first attempt dies mid-write")
            s["out"] = "done"
            return "ok"

        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", flaky, reads=(),
                          writes=("scratch", "out"), retries=2,
                          backoff=0)
        state, report = pipeline.run()
        # The retry must not see the first attempt's torn write.
        assert observed == [False, False]
        assert state == {"scratch": True, "out": "done"}
        assert report.record("flaky").retries == 1

    def test_fallback_does_not_see_primary_partial_writes(self):
        seen = {}

        def primary(s):
            s["z"] = "torn"
            raise RuntimeError("primary dies")

        def fallback(s):
            seen["z_visible"] = "z" in s
            s["z"] = "fallback value"
            return "substituted"

        pipeline = DecisionPipeline()
        pipeline.add_governance("risky", primary, reads=(),
                                writes=("z",), on_error="fallback",
                                fallback=fallback)
        state, report = pipeline.run()
        assert seen["z_visible"] is False
        assert state == {"z": "fallback value"}
        assert report.record("risky").status == "fallback"

    def test_committed_deletion_is_applied(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("drop",
                          lambda s: s.pop("scratch") and "dropped",
                          reads=("scratch",), writes=("scratch",))
        state, _ = pipeline.run({"scratch": 1, "keep": 2})
        assert state == {"keep": 2}

    def test_read_your_writes_and_deletes_within_attempt(self):
        def stage(s):
            s["a"] = 10
            assert s["a"] == 10          # buffered write readable
            assert "a" in s
            del s["a"]
            assert "a" not in s          # buffered delete visible
            s["a"] = 11
            assert sorted(s) == ["a", "x"]
            assert len(s) == 2
            return "ok"

        pipeline = DecisionPipeline()
        pipeline.add_data("rw", stage, reads=("x",), writes=("a",))
        state, _ = pipeline.run({"x": 0})
        assert state == {"x": 0, "a": 11}

    def test_wildcard_stage_is_transactional_too(self):
        def torn(s):
            s["junk"] = 1
            raise RuntimeError("legacy stage dies")

        pipeline = DecisionPipeline()
        pipeline.add_data("legacy", torn, on_error="skip")
        state, report = pipeline.run({"x": 5})
        assert state == {"x": 5}
        assert report.record("legacy").status == "skipped"

    def test_delete_of_missing_key_raises_keyerror(self):
        def stage(s):
            del s["nope"]

        pipeline = DecisionPipeline()
        pipeline.add_data("bad", stage, reads=(), writes=("nope",))
        with pytest.raises(StageFailure, match="nope"):
            pipeline.run()


# -- copy-on-read: defensive copies of read-only arrays ----------------------


def _build_mutating_reader_pipeline():
    """A reader stage that mutates a read-only array through an alias.

    This is exactly the in-place escape hatch the transaction layer
    cannot roll back (and the static analyzer flags as RC004): the
    alias points at the shared object, so ``arr *= 0`` bypasses the
    contract view's write check.
    """
    def seed(s):
        s["arr"] = np.arange(4.0)
        return "seeded"

    def reader(s):
        arr = s["arr"]
        arr *= 0.0  # noqa: RC004 -- deliberate torn write
        s["total"] = float(arr.sum())
        return "read"

    pipeline = DecisionPipeline("copy-on-read")
    pipeline.add_data("seed", seed, reads=(), writes=("arr",))
    pipeline.add_analytics("reader", reader, reads=("arr",),
                           writes=("total",))
    return pipeline


class TestCopyOnRead:
    def test_torn_write_without_flag(self):
        # Baseline: the escape hatch is real -- the shared array is
        # zeroed even though the reader never declared the write.
        state, _ = _build_mutating_reader_pipeline().run()
        assert state["arr"].tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_copy_on_read_prevents_the_torn_write(self):
        state, _ = _build_mutating_reader_pipeline().run(
            copy_on_read=True)
        assert state["arr"].tolist() == [0.0, 1.0, 2.0, 3.0]
        assert state["total"] == 0.0  # the stage saw its own copy

    def test_repeated_reads_see_the_same_copy(self):
        def seed(s):
            s["arr"] = np.arange(3.0)
            return "seeded"

        def reader(s):
            first = s["arr"]
            first += 1.0
            second = s["arr"]
            s["same"] = first is second
            s["sum"] = float(second.sum())
            return "read"

        pipeline = DecisionPipeline()
        pipeline.add_data("seed", seed, reads=(), writes=("arr",))
        pipeline.add_analytics("reader", reader, reads=("arr",),
                               writes=("same", "sum"))
        state, _ = pipeline.run(copy_on_read=True)
        assert state["same"] is True
        assert state["sum"] == 6.0       # the stage's view is coherent
        assert state["arr"].tolist() == [0.0, 1.0, 2.0]

    def test_declared_writes_are_not_copied(self):
        def seed(s):
            s["arr"] = np.arange(3.0)
            return "seeded"

        def owner(s):
            arr = s["arr"]
            arr *= 2.0
            s["arr"] = arr
            return "owned"

        pipeline = DecisionPipeline()
        pipeline.add_data("seed", seed, reads=(), writes=("arr",))
        pipeline.add_governance("owner", owner, reads=("arr",),
                                writes=("arr",))
        state, _ = pipeline.run(copy_on_read=True)
        assert state["arr"].tolist() == [0.0, 2.0, 4.0]

    def test_non_array_values_are_untouched(self):
        marker = object()

        def seed(s):
            s["obj"] = marker
            return "seeded"

        def reader(s):
            s["same"] = s["obj"] is marker
            return "read"

        pipeline = DecisionPipeline()
        pipeline.add_data("seed", seed, reads=(), writes=("obj",))
        pipeline.add_decision("reader", reader, reads=("obj",),
                              writes=("same",))
        state, _ = pipeline.run(copy_on_read=True)
        assert state["same"] is True


# -- cache: tombstones and deep-copied deltas --------------------------------


def _consume(s):
    s["total"] = sum(s["scratch"])
    del s["scratch"]
    return "consumed"


def _seed_scratch(s):
    s["scratch"] = [1, 2, 3]
    return "seeded"


def _build_deleting_pipeline():
    pipeline = DecisionPipeline("tombstones")
    pipeline.add_data("seed", _seed_scratch, reads=(),
                      writes=("scratch",))
    pipeline.add_governance("consume", _consume,
                            reads=("scratch",),
                            writes=("total", "scratch"))
    pipeline.add_decision("decide", lambda s: f"t={s['total']}",
                          reads=("total",), writes=())
    return pipeline


class TestCacheTombstones:
    def test_cached_rerun_replays_deletions(self):
        # Regression: the delta used to keep only still-present keys,
        # so a cached rerun of a deleting stage diverged from a live
        # run by resurrecting the deleted key.
        cache = StageCache()
        live, r1 = _build_deleting_pipeline().run(cache=cache)
        replayed, r2 = _build_deleting_pipeline().run(cache=cache)
        assert r1.cache_hits == 0
        assert r2.cache_hits == 3
        assert "scratch" not in replayed
        assert canonical(live) == canonical(replayed)

    def test_without_stage_ablation_identical_cached_vs_uncached(self):
        cache = StageCache()
        _build_deleting_pipeline().run(cache=cache)
        ablated = _build_deleting_pipeline().without_stage("decide")
        cold, _ = ablated.run()                   # no cache
        warm, report = ablated.run(cache=cache)   # full replay
        assert report.cache_hits == 2
        assert canonical(cold) == canonical(warm)


class TestCacheIsolation:
    def test_later_mutation_cannot_poison_replayed_delta(self):
        # Regression: deltas were replayed by reference, so one run
        # mutating a replayed array corrupted every future replay.
        def produce(s):
            s["arr"] = np.zeros(4)
            return "produced"

        def build():
            pipeline = DecisionPipeline("poison")
            pipeline.add_data("produce", produce, reads=(),
                              writes=("arr",))
            return pipeline

        cache = StageCache()
        build().run(cache=cache)

        state2, report2 = build().run(cache=cache)
        assert report2.cache_hits == 1
        state2["arr"][:] = 999.0  # a later stage mutating in place

        state3, report3 = build().run(cache=cache)
        assert report3.cache_hits == 1
        np.testing.assert_array_equal(state3["arr"], np.zeros(4))

    def test_uncopyable_delta_demotes_stage_to_uncacheable(self):
        def produce_lock(s):
            s["lock"] = threading.Lock()  # not deep-copyable
            return "locked"

        def build():
            pipeline = DecisionPipeline("uncopyable")
            pipeline.add_data("lock", produce_lock, reads=(),
                              writes=("lock",))
            return pipeline

        cache = StageCache()
        state1, _ = build().run(cache=cache)
        assert len(cache) == 0  # store demoted, nothing cached
        state2, report = build().run(cache=cache)
        assert report.cache_hits == 0  # re-executed, not replayed
        assert state2["lock"] is not state1["lock"]


# -- fingerprint stability ---------------------------------------------------

_NESTED_SOURCE = """
def outer(s):
    s["y"] = sorted(s["xs"], key=lambda v: (v % 3, v))
    return "sorted"
"""


def _compile_nested():
    namespace = {}
    exec(compile(_NESTED_SOURCE, "<src>", "exec"), namespace)
    return namespace["outer"]


class TestFingerprintStability:
    def test_identical_functions_with_nested_code_share_fingerprint(self):
        # Regression: repr(co_consts) embedded the nested lambda's
        # memory address, so separately compiled but identical
        # functions never shared a cache key.
        f1, f2 = _compile_nested(), _compile_nested()
        assert f1 is not f2
        assert f1.__code__ is not f2.__code__
        assert (_function_fingerprint(f1)
                == _function_fingerprint(f2))

    def test_recompiled_identical_stage_hits_the_cache(self):
        cache = StageCache()

        def build(function):
            pipeline = DecisionPipeline("recompiled")
            pipeline.add_data("sort", function, reads=("xs",),
                              writes=("y",))
            return pipeline

        initial = {"xs": [5, 3, 1, 4]}
        build(_compile_nested()).run(initial, cache=cache)
        _, report = build(_compile_nested()).run(initial, cache=cache)
        assert report.cache_hits == 1

    def test_different_nested_lambda_changes_fingerprint(self):
        other = _NESTED_SOURCE.replace("v % 3", "v % 5")
        namespace = {}
        exec(compile(other, "<src>", "exec"), namespace)
        assert (_function_fingerprint(_compile_nested())
                != _function_fingerprint(namespace["outer"]))

    def test_unsortable_dict_fingerprint_is_order_independent(self):
        a = {1: "int first", "k": 2}        # int/str keys: unsortable
        b = {"k": 2, 1: "int first"}
        with pytest.raises(TypeError):
            sorted(a.items())
        assert fingerprint(a) == fingerprint(b)

    def test_mixed_set_fingerprint_is_order_independent(self):
        assert (fingerprint({1, "a", (2, 3)})
                == fingerprint({(2, 3), "a", 1}))


# -- timeouts, deadlines, cancellation, backoff ------------------------------


class TestBoundedExecution:
    def test_injected_delay_trips_stage_timeout(self):
        faults = FaultInjector().delay("slow", 0.08)

        def slow(s):
            s["out"] = 1  # state access: cooperative checkpoint
            return "done"

        pipeline = DecisionPipeline()
        pipeline.add_data("slow", slow, reads=(), writes=("out",),
                          timeout=0.02, backoff=0)
        state, _ = pipeline.run()  # no injector: comfortably in budget
        assert state == {"out": 1}

        # with the injector attached the delay overruns the timeout
        with pytest.raises(StageFailure, match="timed out") as excinfo:
            pipeline.run(tracer=faults)
        assert faults.injected == 1
        assert excinfo.value.report.record("slow").status == "timed_out"
        assert excinfo.value.state == {}  # nothing committed

    def test_timeout_then_clean_retry_succeeds(self):
        faults = FaultInjector().timeout("flaky")
        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", lambda s: s.update(ok=1) or "ok",
                          reads=(), writes=("ok",), retries=1,
                          backoff=0)
        state, report = pipeline.run(tracer=faults)
        assert state == {"ok": 1}
        record = report.record("flaky")
        assert record.status == "ok"
        assert record.retries == 1
        kinds = faults.kinds()
        assert "fault_injected" in kinds
        assert "stage_retry" in kinds

    def test_injected_timeout_with_skip_policy(self):
        faults = FaultInjector().timeout("hang")
        pipeline = DecisionPipeline()
        pipeline.add_governance("hang",
                                lambda s: s.update(h=1) or "ok",
                                reads=(), writes=("h",),
                                on_error="skip", backoff=0)
        pipeline.add_decision("after", lambda s: "ran",
                              reads=(), writes=())
        state, report = pipeline.run(tracer=faults)
        assert "h" not in state
        assert report.record("hang").status == "skipped"
        assert report.record("after").summary == "ran"
        assert len(faults.of_kind("stage_timeout")) == 1

    def test_run_deadline_cancels_remaining_stages(self):
        faults = FaultInjector().delay("first", 0.1)

        def stage(key):
            def run(s):
                s[key] = True
                return key
            return run

        pipeline = DecisionPipeline()
        pipeline.add_data("first", stage("a"))      # wildcard: chain
        pipeline.add_governance("second", stage("b"))
        pipeline.add_decision("third", stage("c"))
        with pytest.raises(RunDeadlineExceeded) as excinfo:
            pipeline.run(tracer=faults, deadline=0.03)
        report = excinfo.value.report
        assert report.deadline_seconds == 0.03
        statuses = {r.name: r.status for r in report.records}
        # "first" was in flight when the deadline hit: cancelled at
        # its next state access, nothing committed.  The rest never
        # started and are recorded as cancelled for the audit trail.
        assert statuses["first"] == "cancelled"
        assert statuses["second"] == "cancelled"
        assert statuses["third"] == "cancelled"
        assert excinfo.value.state == {}
        assert report.cancelled_count == 3
        assert "deadline" in report.render()

    def test_failure_cancels_in_flight_stages(self):
        barrier = threading.Barrier(2, timeout=5)

        def doomed(s):
            barrier.wait()
            raise RuntimeError("fails while peer is in flight")

        def slow(s):
            s["partial"] = 1     # buffered, must never commit
            barrier.wait()
            for _ in range(500):  # state accesses = cancel points
                _ = s["x"]
                time.sleep(0.005)
            return "survived"

        pipeline = DecisionPipeline()
        pipeline.add_data("load", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        pipeline.add_governance("doomed", doomed,
                                reads=("x",), writes=("d",),
                                backoff=0)
        pipeline.add_governance("slow", slow,
                                reads=("x",), writes=("partial",))
        pipeline.add_decision("never", lambda s: "n",
                              reads=("d", "partial"), writes=())
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run()
        failure = excinfo.value
        assert failure.stage == "doomed"
        assert failure.secondary == []
        # The in-flight stage aborted cooperatively, committed
        # nothing, and the never-started stage is in the audit trail.
        assert failure.state == {"x": 1}
        statuses = {r.name: r.status for r in failure.report.records}
        assert statuses["slow"] == "cancelled"
        assert statuses["never"] == "cancelled"

    def test_concurrent_secondary_failures_are_kept(self):
        barrier = threading.Barrier(2, timeout=5)

        def failer(name):
            def run(s):
                barrier.wait()
                raise RuntimeError(f"{name} dies")
            return run

        pipeline = DecisionPipeline()
        pipeline.add_governance("f1", failer("f1"),
                                reads=(), writes=("a",), backoff=0)
        pipeline.add_governance("f2", failer("f2"),
                                reads=(), writes=("b",), backoff=0)
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run()
        failure = excinfo.value
        # Both failures happened; the second is attached, not dropped.
        assert len(failure.secondary) == 1
        assert isinstance(failure.secondary[0], StageFailure)
        assert {failure.stage, failure.secondary[0].stage} == {"f1",
                                                               "f2"}

    # Both backoff tests observe the scheduler's sleep calls through a
    # monkeypatched recorder instead of asserting on wall-clock time —
    # see tests/README.md (loaded CI runners make elapsed-time bounds
    # flaky, and the recorded delays pin the *exact* pause schedule).

    def test_backoff_spaces_retry_attempts(self, monkeypatch):
        from repro.core import scheduler as scheduler_module

        pauses = []
        monkeypatch.setattr(scheduler_module.time, "sleep",
                            pauses.append)
        faults = FaultInjector().fail("flaky", times=3)
        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", lambda s: "ok", reads=(),
                          writes=(), retries=3, backoff=0.04)
        _, report = pipeline.run(tracer=faults)
        assert report.record("flaky").retries == 3
        # Jitter keeps each pause in [50%, 100%] of 0.04 * 2**(n-1).
        assert len(pauses) == 3
        for attempt, pause in enumerate(pauses, start=1):
            nominal = 0.04 * 2 ** (attempt - 1)
            assert 0.5 * nominal <= pause <= nominal

    def test_zero_backoff_disables_the_pause(self, monkeypatch):
        from repro.core import scheduler as scheduler_module

        pauses = []
        monkeypatch.setattr(scheduler_module.time, "sleep",
                            pauses.append)
        faults = FaultInjector().fail("flaky", times=3)
        pipeline = DecisionPipeline()
        pipeline.add_data("flaky", lambda s: "ok", reads=(),
                          writes=(), retries=3, backoff=0)
        pipeline.run(tracer=faults)
        assert pauses == []


# -- the FaultInjector itself ------------------------------------------------


class TestFaultInjector:
    def test_scripted_failures_consume_in_fifo_order(self):
        faults = (FaultInjector()
                  .fail("s", exc=ValueError("first"))
                  .fail("s", exc=KeyError("second")))
        assert faults.pending("s") == 2
        pipeline = DecisionPipeline()
        pipeline.add_data("s", lambda s: "ok", reads=(), writes=(),
                          retries=2, backoff=0)
        _, report = pipeline.run(tracer=faults)
        assert faults.pending() == 0
        assert faults.injected == 2
        retries = faults.of_kind("stage_retry")
        assert "first" in retries[0].data["error"]
        assert "second" in retries[1].data["error"]
        assert report.record("s").retries == 2

    def test_injector_validates_arguments(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.fail("s", times=0)
        with pytest.raises(TypeError):
            faults.fail("s", exc="not an exception")
        with pytest.raises(ValueError):
            faults.delay("s", -1)

    def test_untargeted_stages_run_untouched(self):
        faults = FaultInjector().fail("other")
        pipeline = DecisionPipeline()
        pipeline.add_data("mine", lambda s: s.update(x=1) or "ok",
                          reads=(), writes=("x",))
        state, _ = pipeline.run(tracer=faults)
        assert state == {"x": 1}
        assert faults.injected == 0
        assert faults.pending("other") == 1

    def test_injected_timeout_is_a_stage_timeout(self):
        faults = FaultInjector().timeout("s")
        pipeline = DecisionPipeline()
        pipeline.add_data("s", lambda s: "ok", reads=(), writes=(),
                          backoff=0)
        with pytest.raises(StageFailure) as excinfo:
            pipeline.run(tracer=faults)
        assert isinstance(excinfo.value.__cause__, StageTimeout)
        assert excinfo.value.report.record("s").status == "timed_out"
