"""Tests for eco-driving speed planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decision.ecodriving import EcoDrivingPlanner, FuelModel


class TestFuelModel:
    def test_curve_is_u_shaped(self):
        model = FuelModel()
        optimum = model.optimal_speed
        speeds = np.array([optimum * 0.5, optimum, optimum * 2.0])
        fuel = model.per_distance(speeds)
        assert fuel[1] < fuel[0]
        assert fuel[1] < fuel[2]

    def test_optimal_speed_is_stationary_point(self):
        model = FuelModel()
        v = model.optimal_speed
        epsilon = 1e-4
        assert model.per_distance(v) <= model.per_distance(v + epsilon)
        assert model.per_distance(v) <= model.per_distance(v - epsilon)

    def test_time_price_raises_speed(self):
        model = FuelModel()
        assert model.speed_for_time_price(100.0) > \
            model.speed_for_time_price(0.0)

    def test_zero_time_price_matches_optimum(self):
        model = FuelModel()
        assert model.speed_for_time_price(0.0) == pytest.approx(
            model.optimal_speed)

    def test_validation(self):
        with pytest.raises(ValueError):
            FuelModel(a=0.0)
        with pytest.raises(ValueError):
            FuelModel().per_distance(0.0)
        with pytest.raises(ValueError):
            FuelModel().speed_for_time_price(-1.0)


class TestPlanner:
    SEGMENTS = [(10.0, 130.0), (5.0, 80.0), (20.0, 110.0)]

    def test_unconstrained_plan_uses_optimal_speed(self):
        planner = EcoDrivingPlanner()
        plan = planner.plan(self.SEGMENTS)
        optimum = planner.fuel_model.optimal_speed
        expected = np.minimum(optimum,
                              [limit for _, limit in self.SEGMENTS])
        assert np.allclose(plan["speeds"], expected)

    def test_deadline_binds(self):
        planner = EcoDrivingPlanner()
        relaxed = planner.plan(self.SEGMENTS)
        deadline = relaxed["travel_time"] * 0.8
        plan = planner.plan(self.SEGMENTS, deadline)
        assert plan["travel_time"] == pytest.approx(deadline, rel=1e-4)
        assert plan["fuel"] > relaxed["fuel"]

    def test_speeds_respect_limits(self):
        planner = EcoDrivingPlanner()
        baseline = planner.baseline_at_limits(self.SEGMENTS)
        plan = planner.plan(self.SEGMENTS,
                            baseline["travel_time"] * 1.01)
        limits = np.array([limit for _, limit in self.SEGMENTS])
        assert np.all(plan["speeds"] <= limits + 1e-9)

    def test_infeasible_deadline(self):
        planner = EcoDrivingPlanner()
        fastest = planner.baseline_at_limits(self.SEGMENTS)
        with pytest.raises(ValueError):
            planner.plan(self.SEGMENTS, fastest["travel_time"] * 0.5)

    def test_savings_positive_with_slack(self):
        """The paper's eco-driving claim: informed speed choice cuts
        fuel at equal punctuality."""
        planner = EcoDrivingPlanner()
        baseline = planner.baseline_at_limits(self.SEGMENTS)
        saved, plan, base = planner.savings(
            self.SEGMENTS, baseline["travel_time"] * 1.3)
        assert saved > 0.1  # >10% fuel saved with 30% time slack
        assert plan["travel_time"] <= base["travel_time"] * 1.3 + 1e-6

    def test_equal_marginal_tradeoff_across_segments(self):
        """At the optimum, every non-clamped segment drives the same
        speed (the Lagrangian condition)."""
        planner = EcoDrivingPlanner()
        segments = [(10.0, 200.0), (15.0, 200.0), (5.0, 200.0)]
        relaxed = planner.plan(segments)
        plan = planner.plan(segments, relaxed["travel_time"] * 0.7)
        assert np.allclose(plan["speeds"], plan["speeds"][0])

    def test_validation(self):
        planner = EcoDrivingPlanner()
        with pytest.raises(ValueError):
            planner.plan([])
        with pytest.raises(ValueError):
            planner.plan([(0.0, 100.0)])


@settings(deadline=None, max_examples=25)
@given(
    slack=st.floats(min_value=1.02, max_value=3.0),
    seed=st.integers(0, 100),
)
def test_fuel_monotone_in_deadline_property(slack, seed):
    """More time slack never costs more fuel (convexity)."""
    rng = np.random.default_rng(seed)
    segments = [
        (float(rng.uniform(1, 20)), float(rng.uniform(60, 140)))
        for _ in range(int(rng.integers(1, 6)))
    ]
    planner = EcoDrivingPlanner()
    fastest = planner.baseline_at_limits(segments)["travel_time"]
    tight = planner.plan(segments, fastest * 1.01)
    loose = planner.plan(segments, fastest * slack)
    assert loose["fuel"] <= tight["fuel"] + 1e-9