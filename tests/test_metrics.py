"""Tests for repro.analytics.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.metrics import (
    best_f1,
    crps_from_samples,
    mae,
    mape,
    pinball_loss,
    point_adjusted_scores,
    pr_auc,
    precision_recall_f1,
    rmse,
    roc_auc,
    smape,
)


class TestRegressionMetrics:
    def test_mae_known(self):
        assert mae([1, 2, 3], [2, 2, 5]) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        truth = rng.normal(size=50)
        predicted = truth + rng.normal(size=50)
        assert rmse(truth, predicted) >= mae(truth, predicted)

    def test_perfect_prediction(self):
        values = np.arange(10.0)
        assert mae(values, values) == 0.0
        assert rmse(values, values) == 0.0
        assert mape(values + 1, values + 1) == 0.0
        assert smape(values, values) == 0.0

    def test_mape_percent(self):
        assert mape([100.0], [90.0]) == pytest.approx(10.0)

    def test_smape_symmetric(self):
        assert smape([100.0], [90.0]) == pytest.approx(
            smape([90.0], [100.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae([1, 2], [1, 2, 3])

    def test_empty(self):
        with pytest.raises(ValueError):
            mae([], [])

    def test_pinball_asymmetry(self):
        # At q=0.9, under-prediction is 9x as costly as over-prediction.
        under = pinball_loss([10.0], [0.0], 0.9)
        over = pinball_loss([0.0], [10.0], 0.9)
        assert under == pytest.approx(9.0)
        assert over == pytest.approx(1.0)

    def test_pinball_invalid_quantile(self):
        with pytest.raises(ValueError):
            pinball_loss([1.0], [1.0], 1.0)

    def test_crps_sharp_and_correct_beats_diffuse(self):
        rng = np.random.default_rng(1)
        truth = np.zeros(200)
        sharp = rng.normal(0, 0.1, size=(200, 100))
        diffuse = rng.normal(0, 2.0, size=(200, 100))
        assert crps_from_samples(truth, sharp) < crps_from_samples(
            truth, diffuse)

    def test_crps_matches_mae_for_point_samples(self):
        truth = np.array([1.0, 2.0, 3.0])
        samples = np.array([[2.0], [2.0], [2.0]])
        assert crps_from_samples(truth, samples) == pytest.approx(
            mae(truth, [2.0, 2.0, 2.0]))

    def test_crps_row_mismatch(self):
        with pytest.raises(ValueError):
            crps_from_samples([1.0, 2.0], np.zeros((3, 10)))


class TestDetectionMetrics:
    def test_precision_recall_f1_known(self):
        labels = [True, True, False, False]
        predictions = [True, False, True, False]
        precision, recall, f1 = precision_recall_f1(labels, predictions)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)

    def test_no_predictions(self):
        precision, recall, f1 = precision_recall_f1(
            [True, False], [False, False])
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_best_f1_perfect_scores(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        f1, threshold = best_f1(labels, scores)
        assert f1 == pytest.approx(1.0)
        assert threshold >= 0.8

    def test_best_f1_beats_any_fixed_threshold(self):
        rng = np.random.default_rng(2)
        labels = rng.random(200) < 0.1
        scores = labels * 1.0 + rng.normal(0, 0.5, 200)
        best, _ = best_f1(labels, scores)
        for threshold in np.linspace(scores.min(), scores.max(), 20):
            _, _, f1 = precision_recall_f1(labels, scores > threshold)
            assert best >= f1 - 1e-9

    def test_roc_auc_perfect_and_inverted(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        assert roc_auc(labels, [0.1, 0.2, 0.8, 0.9]) == 1.0
        assert roc_auc(labels, [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_roc_auc_random_is_half(self):
        rng = np.random.default_rng(3)
        labels = rng.random(3000) < 0.3
        scores = rng.random(3000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.04)

    def test_roc_auc_ties(self):
        labels = np.array([0, 1, 0, 1], dtype=bool)
        assert roc_auc(labels, [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_roc_auc_one_class(self):
        with pytest.raises(ValueError):
            roc_auc([True, True], [0.1, 0.2])

    def test_pr_auc_perfect(self):
        labels = np.array([0, 0, 1, 1], dtype=bool)
        assert pr_auc(labels, [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_pr_auc_requires_positive(self):
        with pytest.raises(ValueError):
            pr_auc([False, False], [0.1, 0.2])

    def test_point_adjustment_spreads_segment_max(self):
        labels = np.array([0, 1, 1, 1, 0], dtype=bool)
        scores = np.array([0.1, 0.2, 0.9, 0.3, 0.1])
        adjusted = point_adjusted_scores(labels, scores)
        assert np.allclose(adjusted, [0.1, 0.9, 0.9, 0.9, 0.1])

    def test_point_adjustment_leaves_normals(self):
        labels = np.zeros(5, dtype=bool)
        scores = np.arange(5.0)
        assert np.allclose(point_adjusted_scores(labels, scores), scores)


@settings(deadline=None, max_examples=30)
@given(seed=st.integers(0, 500))
def test_roc_auc_is_ranking_probability(seed):
    """AUC equals the probability a random positive outranks a random
    negative (checked exhaustively on small samples)."""
    rng = np.random.default_rng(seed)
    labels = rng.random(30) < 0.4
    if not labels.any() or labels.all():
        return
    scores = rng.normal(size=30)
    positives = scores[labels]
    negatives = scores[~labels]
    wins = sum((p > n) + 0.5 * (p == n)
               for p in positives for n in negatives)
    expected = wins / (len(positives) * len(negatives))
    assert roc_auc(labels, scores) == pytest.approx(expected)
