"""Tests for the block-bootstrap scenario generator."""

import numpy as np
import pytest

from repro import TimeSeries
from repro.datasets import seasonal_series
from repro.analytics.generative import BlockBootstrapGenerator


@pytest.fixture(scope="module")
def history():
    return seasonal_series(1000, rng=np.random.default_rng(0))


class TestFitting:
    def test_requires_timeseries(self):
        with pytest.raises(TypeError):
            BlockBootstrapGenerator().fit([1, 2, 3])

    def test_requires_complete(self):
        gappy = TimeSeries(np.concatenate([[np.nan], np.zeros(100)]))
        with pytest.raises(ValueError):
            BlockBootstrapGenerator(block_length=10).fit(gappy)

    def test_requires_two_blocks(self):
        short = TimeSeries(np.zeros(30))
        with pytest.raises(ValueError):
            BlockBootstrapGenerator(block_length=24).fit(short)

    def test_sample_before_fit(self):
        with pytest.raises(RuntimeError):
            BlockBootstrapGenerator().sample(10)


class TestSampling:
    def test_shapes(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, rng=np.random.default_rng(1)).fit(history)
        assert generator.sample(200).shape == (200,)
        assert generator.sample_paths(100, 7).shape == (7, 100)

    def test_length_not_multiple_of_block(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, rng=np.random.default_rng(2)).fit(history)
        assert generator.sample(37).shape == (37,)

    def test_moments_match_history(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, period=96,
            rng=np.random.default_rng(3)).fit(history)
        paths = generator.sample_paths(500, 30)
        original = history.values[:, 0]
        assert paths.mean() == pytest.approx(original.mean(), abs=0.15)
        assert paths.std() == pytest.approx(original.std(), rel=0.15)

    def test_seasonal_profile_preserved(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, period=96,
            rng=np.random.default_rng(4)).fit(history)
        paths = generator.sample_paths(480, 30)
        phases = np.arange(480) % 96
        original = history.values[:, 0]
        generated_profile = np.array([
            paths[:, phases == p].mean() for p in range(96)])
        original_profile = np.array([
            original[np.arange(1000) % 96 == p].mean()
            for p in range(96)])
        correlation = np.corrcoef(generated_profile,
                                  original_profile)[0, 1]
        assert correlation > 0.95

    def test_unphased_sampler_loses_seasonality(self, history):
        """Without the phase constraint the seasonal shape washes out -
        the ablation that shows why the seasonal variant matters."""
        seasonal = BlockBootstrapGenerator(
            block_length=12, period=96,
            rng=np.random.default_rng(5)).fit(history)
        plain = BlockBootstrapGenerator(
            block_length=12, rng=np.random.default_rng(5)).fit(history)
        original = history.values[:, 0]
        original_profile = np.array([
            original[np.arange(1000) % 96 == p].mean()
            for p in range(96)])

        def profile_correlation(generator):
            paths = generator.sample_paths(480, 30)
            phases = np.arange(480) % 96
            profile = np.array([paths[:, phases == p].mean()
                                for p in range(96)])
            return np.corrcoef(profile, original_profile)[0, 1]

        assert profile_correlation(seasonal) > \
            profile_correlation(plain) + 0.2

    def test_paths_are_novel(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, period=96,
            rng=np.random.default_rng(6)).fit(history)
        path = generator.sample(96)
        original = history.values[:, 0]
        copies = [
            np.allclose(path, original[i:i + 96])
            for i in range(len(original) - 96)
        ]
        assert not any(copies)

    def test_deterministic_under_seed(self, history):
        a = BlockBootstrapGenerator(
            block_length=24, rng=np.random.default_rng(7)).fit(history)
        b = BlockBootstrapGenerator(
            block_length=24, rng=np.random.default_rng(7)).fit(history)
        assert np.array_equal(a.sample(100), b.sample(100))

    def test_seams_are_continuous(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, rng=np.random.default_rng(8)).fit(history)
        path = generator.sample(480)
        jumps = np.abs(np.diff(path))
        original_jumps = np.abs(np.diff(history.values[:, 0]))
        # Seam blending keeps step sizes comparable to the real series.
        assert jumps.max() < 4 * original_jumps.max()

    def test_scenario_quantile_ordering(self, history):
        generator = BlockBootstrapGenerator(
            block_length=24, period=96,
            rng=np.random.default_rng(9)).fit(history)
        low = generator.scenario_quantile(96, 0.1, n_paths=60)
        high = generator.scenario_quantile(96, 0.9, n_paths=60)
        assert np.all(high >= low)
