"""Tests for repro.datatypes.image_sequence."""

import numpy as np
import pytest

from repro import ImageSequence


def make_sequence(t=6, n=4, m=4, c=2, seed=0):
    rng = np.random.default_rng(seed)
    return ImageSequence(rng.normal(size=(t, n, m, c)))


class TestConstruction:
    def test_channel_dim_added(self):
        seq = ImageSequence(np.zeros((3, 4, 5)))
        assert seq.frames.shape == (3, 4, 5, 1)
        assert seq.n_channels == 1

    def test_shape_accessors(self):
        seq = make_sequence(t=6, n=4, m=5, c=2)
        assert len(seq) == 6
        assert seq.grid_shape == (4, 5)
        assert seq.n_channels == 2

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            ImageSequence(np.zeros((3, 4)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ImageSequence(np.zeros((0, 4, 4)))

    def test_rejects_bad_timestamps(self):
        with pytest.raises(ValueError):
            ImageSequence(np.zeros((3, 2, 2)), timestamps=[0.0, 0.0, 1.0])


class TestAccessors:
    def test_frame_copy(self):
        seq = make_sequence()
        frame = seq.frame(0)
        frame[:] = 99.0
        assert not np.allclose(seq.frame(0), 99.0)

    def test_cell_series_matches_frames(self):
        seq = make_sequence()
        series = seq.cell_series(1, 2, channel=1)
        assert np.allclose(series.values[:, 0], seq.frames[:, 1, 2, 1])

    def test_cell_series_out_of_grid(self):
        with pytest.raises(IndexError):
            make_sequence(n=4, m=4).cell_series(4, 0)

    def test_cell_series_bad_channel(self):
        with pytest.raises(IndexError):
            make_sequence(c=2).cell_series(0, 0, channel=2)


class TestConversions:
    def test_to_timeseries_layout(self):
        seq = make_sequence(t=5, n=3, m=4)
        series = seq.to_timeseries()
        assert series.values.shape == (5, 12)
        # cell (r, c) -> column r*M + c
        assert np.allclose(series.values[:, 1 * 4 + 2],
                           seq.frames[:, 1, 2, 0])

    def test_spatial_mean(self):
        frames = np.ones((4, 3, 3, 1)) * np.arange(4)[:, None, None, None]
        seq = ImageSequence(frames)
        assert np.allclose(seq.spatial_mean().values[:, 0], [0, 1, 2, 3])

    def test_downsample_averages_blocks(self):
        frames = np.zeros((2, 4, 4))
        frames[:, :2, :2] = 4.0
        seq = ImageSequence(frames).downsample(2)
        assert seq.grid_shape == (2, 2)
        assert seq.frames[0, 0, 0, 0] == pytest.approx(4.0)
        assert seq.frames[0, 1, 1, 0] == pytest.approx(0.0)

    def test_downsample_preserves_global_mean(self):
        seq = make_sequence(t=3, n=4, m=4, c=1)
        pooled = seq.downsample(2)
        assert pooled.frames.mean() == pytest.approx(seq.frames.mean())

    def test_downsample_indivisible(self):
        with pytest.raises(ValueError):
            make_sequence(n=4, m=5).downsample(2)

    def test_downsample_factor_one_identity(self):
        seq = make_sequence()
        assert np.allclose(seq.downsample(1).frames, seq.frames)
