"""Tests for the shared NumPy MLP substrate."""

import numpy as np
import pytest

from repro.analytics._mlp import Mlp


class TestConstruction:
    def test_layer_validation(self):
        with pytest.raises(ValueError):
            Mlp([5])
        with pytest.raises(ValueError):
            Mlp([5, 0, 2])

    def test_parameter_count(self):
        network = Mlp([4, 8, 2])
        assert network.n_parameters == 4 * 8 + 8 + 8 * 2 + 2

    def test_deterministic_init(self):
        a = Mlp([4, 6, 2], rng=np.random.default_rng(0))
        b = Mlp([4, 6, 2], rng=np.random.default_rng(0))
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)


class TestForward:
    def test_output_shape(self):
        network = Mlp([3, 5, 2], rng=np.random.default_rng(1))
        output = network.predict(np.zeros((7, 3)))
        assert output.shape == (7, 2)

    def test_linear_output_layer(self):
        """The last layer has no activation: outputs are unbounded."""
        network = Mlp([2, 4, 1], rng=np.random.default_rng(2))
        network.weights[-1] *= 100.0
        output = network.predict(np.ones((1, 2)))
        assert abs(output[0, 0]) > 1.0  # tanh would cap at 1

    def test_hidden_activations_bounded(self):
        network = Mlp([2, 4, 1], rng=np.random.default_rng(3))
        _, activations = network.forward(
            np.random.default_rng(4).normal(size=(10, 2)) * 100)
        assert np.all(np.abs(activations[1]) <= 1.0)


class TestTraining:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(5)
        inputs = rng.normal(size=(300, 3))
        targets = inputs @ np.array([[1.0], [-2.0], [0.5]])
        network = Mlp([3, 16, 1], learning_rate=0.01, n_epochs=150,
                      rng=np.random.default_rng(6))
        network.fit(inputs, targets)
        error = np.abs(network.predict(inputs) - targets).mean()
        assert error < 0.2

    def test_learns_nonlinear_map(self):
        rng = np.random.default_rng(7)
        inputs = rng.uniform(-2, 2, size=(400, 1))
        targets = np.sin(2 * inputs)
        network = Mlp([1, 24, 1], learning_rate=0.01, n_epochs=300,
                      rng=np.random.default_rng(8))
        network.fit(inputs, targets)
        error = np.abs(network.predict(inputs) - targets).mean()
        assert error < 0.15

    def test_loss_decreases(self):
        rng = np.random.default_rng(9)
        inputs = rng.normal(size=(100, 4))
        network = Mlp([4, 8, 4], n_epochs=30,
                      rng=np.random.default_rng(10))
        network.fit(inputs, inputs)
        assert network.training_losses[-1] < network.training_losses[0]

    def test_zero_weight_samples_ignored(self):
        """A sample with weight 0 must not influence the fit."""
        rng = np.random.default_rng(11)
        inputs = rng.normal(size=(100, 2))
        targets = inputs[:, :1] * 2.0
        poisoned_inputs = np.vstack([inputs, [[0.0, 0.0]]])
        poisoned_targets = np.vstack([targets, [[1e6]]])
        weights = np.concatenate([np.ones(100), [0.0]])
        network = Mlp([2, 8, 1], n_epochs=80,
                      rng=np.random.default_rng(12))
        network.fit(poisoned_inputs, poisoned_targets,
                    sample_weight=weights)
        error = np.abs(network.predict(inputs) - targets).mean()
        assert error < 0.3

    def test_validation(self):
        network = Mlp([2, 2])
        with pytest.raises(ValueError):
            network.fit(np.zeros((5, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            network.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            network.fit(np.zeros((5, 2)), np.zeros((5, 2)),
                        sample_weight=-np.ones(5))

    def test_gradient_check(self):
        """Analytic gradients match finite differences."""
        rng = np.random.default_rng(13)
        network = Mlp([3, 4, 2], rng=np.random.default_rng(14))
        inputs = rng.normal(size=(5, 3))
        targets = rng.normal(size=(5, 2))

        def loss():
            output = network.predict(inputs)
            return float(((output - targets) ** 2).sum())

        output, activations = network.forward(inputs)
        gradient = 2.0 * (output - targets)
        grads_w, _ = network._backward(activations, gradient)

        epsilon = 1e-6
        for layer in range(len(network.weights)):
            i, j = 0, 0
            original = network.weights[layer][i, j]
            network.weights[layer][i, j] = original + epsilon
            upper = loss()
            network.weights[layer][i, j] = original - epsilon
            lower = loss()
            network.weights[layer][i, j] = original
            numeric = (upper - lower) / (2 * epsilon)
            assert grads_w[layer][i, j] == pytest.approx(numeric,
                                                         rel=1e-3)
