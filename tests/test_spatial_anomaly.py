"""Tests for neighbour-consensus (spatio-temporal) anomaly detection."""

import numpy as np
import pytest

from repro.datatypes import CorrelatedTimeSeries
from repro.datasets import traffic_speed_dataset
from repro.analytics.anomaly import GraphDeviationDetector


@pytest.fixture(scope="module")
def deployment():
    clean = traffic_speed_dataset(n_sensors=15, n_days=5, n_events=0,
                                  rng=np.random.default_rng(0))
    live = traffic_speed_dataset(n_sensors=15, n_days=2, n_events=0,
                                 rng=np.random.default_rng(0))
    return clean, live


def with_stuck_sensor(dataset, sensor):
    values = dataset.values
    values[:, sensor] = values[:, sensor].mean()
    return CorrelatedTimeSeries(values, adjacency=dataset.adjacency,
                                timestamps=dataset.timestamps)


class TestGraphDeviationDetector:
    def test_flags_exactly_the_stuck_sensor(self, deployment):
        """The spatio-temporal case temporal detectors miss: the frozen
        value is individually plausible, only the *neighbour context*
        reveals the fault — and blame lands on the right sensor."""
        clean, live = deployment
        faulty = with_stuck_sensor(live, 4)
        detector = GraphDeviationDetector().fit(clean)
        flagged = detector.flag_sensors(faulty, threshold=2.0)
        assert list(flagged) == [4]

    def test_healthy_deployment_not_flagged(self, deployment):
        clean, live = deployment
        detector = GraphDeviationDetector().fit(clean)
        assert len(detector.flag_sensors(live, threshold=2.0)) == 0

    def test_score_matrix_shape_and_positivity(self, deployment):
        clean, live = deployment
        detector = GraphDeviationDetector().fit(clean)
        matrix = detector.score_matrix(live)
        assert matrix.shape == live.values.shape
        assert np.all(matrix >= 0)

    def test_stuck_sensor_dominates_scores(self, deployment):
        clean, live = deployment
        faulty = with_stuck_sensor(live, 7)
        detector = GraphDeviationDetector().fit(clean)
        matrix = detector.score_matrix(faulty)
        medians = np.median(matrix, axis=0)
        assert np.argmax(medians) == 7
        assert medians[7] > 5 * np.median(np.delete(medians, 7))

    def test_per_timestep_score(self, deployment):
        clean, live = deployment
        detector = GraphDeviationDetector().fit(clean)
        scores = detector.score(live)
        assert scores.shape == (len(live),)

    def test_isolated_sensor_uses_mean_fallback(self):
        values = np.random.default_rng(1).normal(size=(100, 3))
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0  # sensor 2 isolated
        dataset = CorrelatedTimeSeries(values, adjacency=adjacency)
        detector = GraphDeviationDetector().fit(dataset)
        kind, _ = detector._models[2]
        assert kind == "mean"
        assert np.isfinite(detector.score_matrix(dataset)).all()

    def test_validation(self, deployment):
        clean, live = deployment
        detector = GraphDeviationDetector()
        with pytest.raises(TypeError):
            detector.fit(clean.as_timeseries())
        with pytest.raises(RuntimeError):
            detector.score(live)
        detector.fit(clean)
        small = traffic_speed_dataset(n_sensors=8, n_days=1,
                                      rng=np.random.default_rng(2))
        with pytest.raises(ValueError):
            detector.score(small)

    def test_rejects_incomplete(self, deployment):
        clean, _ = deployment
        gappy = clean.corrupt(0.1, np.random.default_rng(3))
        with pytest.raises(ValueError):
            GraphDeviationDetector().fit(gappy)
