"""Unit and property tests for repro.datatypes.timeseries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TimeSeries


def make_series(n=20, c=2, seed=0):
    rng = np.random.default_rng(seed)
    return TimeSeries(rng.normal(size=(n, c)))


class TestConstruction:
    def test_univariate_promoted_to_matrix(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        assert series.values.shape == (3, 1)
        assert series.n_channels == 1
        assert series.is_univariate

    def test_default_timestamps_are_range(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        assert np.array_equal(series.timestamps, [0.0, 1.0, 2.0])

    def test_nan_marks_missing(self):
        series = TimeSeries([1.0, np.nan, 3.0])
        assert series.missing_fraction() == pytest.approx(1 / 3)
        assert not series.is_complete()

    def test_explicit_mask_blanks_values(self):
        series = TimeSeries([1.0, 2.0, 3.0], mask=[[True], [False], [True]])
        assert np.isnan(series.values[1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TimeSeries(np.empty((0, 1)))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            TimeSeries(np.zeros((2, 2, 2)))

    def test_rejects_nonincreasing_timestamps(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0, 2.0], timestamps=[1.0, 1.0])

    def test_rejects_mismatched_timestamps(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0, 2.0], timestamps=[0.0, 1.0, 2.0])

    def test_rejects_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0, 2.0], mask=[[True], [False], [True]])

    def test_rejects_mask_claiming_nan_observed(self):
        with pytest.raises(ValueError):
            TimeSeries([1.0, np.nan], mask=[[True], [True]])

    def test_values_are_copied(self):
        raw = np.array([[1.0], [2.0]])
        series = TimeSeries(raw)
        raw[0, 0] = 99.0
        assert series.values[0, 0] == 1.0


class TestAccessors:
    def test_channel_extraction(self):
        series = make_series(n=10, c=3)
        channel = series.channel(1)
        assert channel.is_univariate
        assert np.allclose(channel.values[:, 0], series.values[:, 1])

    def test_channel_negative_index(self):
        series = make_series(n=5, c=2)
        assert np.allclose(series.channel(-1).values[:, 0],
                           series.values[:, 1])

    def test_channel_out_of_range(self):
        with pytest.raises(IndexError):
            make_series(c=2).channel(5)

    def test_equality(self):
        a = make_series(seed=1)
        b = TimeSeries(a.values, timestamps=a.timestamps)
        assert a == b

    def test_inequality_on_values(self):
        a = make_series(seed=1)
        values = a.values
        values[0, 0] += 1
        assert a != TimeSeries(values, timestamps=a.timestamps)


class TestTransformations:
    def test_slice_bounds(self):
        series = make_series(n=10)
        part = series.slice(2, 5)
        assert len(part) == 3
        assert np.allclose(part.values, series.values[2:5])

    def test_slice_invalid(self):
        with pytest.raises(ValueError):
            make_series(n=10).slice(5, 5)

    def test_split_lengths(self):
        head, tail = make_series(n=10).split(0.7)
        assert len(head) == 7
        assert len(tail) == 3

    def test_split_always_nonempty(self):
        head, tail = make_series(n=2).split(0.99)
        assert len(head) == 1 and len(tail) == 1

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_series().split(1.0)

    def test_drop_missing(self):
        series = TimeSeries([[1.0, 2.0], [np.nan, 3.0], [4.0, 5.0]])
        complete = series.drop_missing()
        assert len(complete) == 2
        assert complete.is_complete()

    def test_drop_missing_all_gone(self):
        with pytest.raises(ValueError):
            TimeSeries([[np.nan], [np.nan]]).drop_missing()

    def test_diff_length(self):
        series = make_series(n=10)
        assert len(series.diff()) == 9

    def test_diff_values(self):
        series = TimeSeries([1.0, 3.0, 6.0])
        assert np.allclose(series.diff().values[:, 0], [2.0, 3.0])

    def test_windows_count(self):
        series = make_series(n=10)
        assert len(list(series.windows(4))) == 7
        assert len(list(series.windows(4, stride=2))) == 4

    def test_window_matrix_shape(self):
        series = make_series(n=10, c=2)
        matrix = series.window_matrix(4)
        assert matrix.shape == (7, 4, 2)

    def test_windows_invalid_length(self):
        with pytest.raises(ValueError):
            list(make_series(n=5).windows(6))

    def test_standardized_roundtrip(self):
        series = make_series(n=50, c=2, seed=3)
        scaled, mean, std = series.standardized()
        restored = scaled.values * std + mean
        assert np.allclose(restored, series.values)

    def test_standardized_zero_variance_channel(self):
        series = TimeSeries(np.ones((10, 1)))
        scaled, mean, std = series.standardized()
        assert std[0] == 1.0
        assert np.allclose(scaled.values, 0.0)

    def test_corrupt_hits_target_rate(self):
        rng = np.random.default_rng(0)
        series = make_series(n=200, c=2)
        corrupted = series.corrupt(0.3, rng)
        assert corrupted.missing_fraction() == pytest.approx(0.3, abs=0.05)

    def test_corrupt_block_gaps(self):
        rng = np.random.default_rng(0)
        series = make_series(n=300, c=1)
        corrupted = series.corrupt(0.2, rng, block_length=10)
        missing = ~corrupted.mask[:, 0]
        # Block removal creates runs; count transitions, far fewer than
        # the number of missing points.
        transitions = np.diff(missing.astype(int)) != 0
        assert transitions.sum() < missing.sum()

    def test_corrupt_invalid_rate(self):
        with pytest.raises(ValueError):
            make_series().corrupt(1.0, np.random.default_rng(0))


@settings(deadline=None, max_examples=25)
@given(
    n=st.integers(min_value=2, max_value=40),
    c=st.integers(min_value=1, max_value=4),
    fraction=st.floats(min_value=0.05, max_value=0.95),
)
def test_split_partition_property(n, c, fraction):
    """head + tail always partition the series exactly."""
    rng = np.random.default_rng(42)
    series = TimeSeries(rng.normal(size=(n, c)))
    head, tail = series.split(fraction)
    assert len(head) + len(tail) == n
    recombined = np.vstack([head.values, tail.values])
    assert np.allclose(recombined, series.values)


@settings(deadline=None, max_examples=25)
@given(rate=st.floats(min_value=0.0, max_value=0.6), seed=st.integers(0, 100))
def test_corrupt_never_invents_values(rate, seed):
    """Corruption only removes data: surviving entries are unchanged."""
    rng = np.random.default_rng(seed)
    base = TimeSeries(np.arange(60, dtype=float).reshape(30, 2))
    corrupted = base.corrupt(rate, rng)
    mask = corrupted.mask
    assert np.allclose(corrupted.values[mask], base.values[mask])
