"""The concurrency analyzer: RC030-RC034 fixtures, CLI and self-check.

One positive fixture and at least one near-miss per rule (file:line
asserted in text and JSON), the PR-7 regression (reverting the
``_publish_cache_metrics`` locking must resurface RC031 at the exact
line), the ruff-style noqa code-list forms, the SARIF / baseline CLI
paths, and a self-check that ``src`` + ``examples`` lint clean under
``--select RC03``.
"""

import json
import pickle
from pathlib import Path

from repro.analysis import analyze_paths, analyze_source
from repro.lint import main as lint_main

REPO = Path(__file__).resolve().parent.parent


def codes(findings):
    return [finding.code for finding in findings]


def only(findings, code):
    return [finding for finding in findings if finding.code == code]


def line_of(source, marker):
    for number, line in enumerate(source.splitlines(), start=1):
        if marker in line:
            return number
    raise AssertionError(f"marker {marker!r} not in fixture")


def rc03(source, **kwargs):
    return analyze_source(source, select=["RC03"], **kwargs)


# -- RC030 unlocked-shared-write ---------------------------------------------


class TestUnlockedSharedWrite:
    def test_positive(self):
        src = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def inc(self):
        with self._lock:
            self._n += 1

    def reset(self):
        self._n = 0  # MARK
"""
        findings = only(rc03(src), "RC030")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "error"
        assert "_n" in findings[0].message
        assert "reset" in findings[0].message

    def test_all_writes_locked_is_clean(self):
        src = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def inc(self):
        with self._lock:
            self._n += 1

    def reset(self):
        with self._lock:
            self._n = 0
"""
        assert only(rc03(src), "RC030") == []

    def test_different_but_correct_lock_is_clean(self):
        # Two locks, each attribute consistently under its own.
        src = """
import threading

class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()
        self._a = 0
        self._b = 0

    def bump_a(self):
        with self._a_lock:
            self._a += 1

    def set_a(self):
        with self._a_lock:
            self._a = 0

    def set_b(self):
        with self._b_lock:
            self._b = 0
"""
        assert only(rc03(src), "RC030") == []

    def test_constructor_helper_is_exempt(self):
        # _init_caches is called only from __init__/__setstate__:
        # its unguarded writes are construction, not racing.
        src = """
import threading

class Snap:
    def __init__(self):
        self._init_caches()

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._init_caches()

    def _init_caches(self):
        self._lock = threading.Lock()
        self._snapshot = None

    def refresh(self):
        with self._lock:
            self._snapshot = ()
"""
        assert only(rc03(src), "RC030") == []

    def test_helper_also_called_from_hot_path_not_exempt(self):
        src = """
import threading

class Snap:
    def __init__(self):
        self._lock = threading.Lock()
        self._reset()

    def _reset(self):
        self._snapshot = None  # MARK

    def refresh(self):
        self._reset()
        with self._lock:
            self._snapshot = ()
"""
        findings = only(rc03(src), "RC030")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]


# -- RC031 unguarded read-modify-write ---------------------------------------


RMW_PRELUDE = """
import threading

class Flusher:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._published = 0

    def record(self):
        with self._lock:
            self._hits += 1

    def clear(self):
        with self._lock:
            self._hits = 0
            self._published = 0
"""


class TestUnguardedRmw:
    def test_positive_watermark_advance(self):
        src = RMW_PRELUDE + """
    def publish(self):
        delta = self._hits - self._published
        self._published = self._hits  # MARK
        return delta
"""
        findings = only(rc03(src), "RC031")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert findings[0].severity == "error"
        assert "_published" in findings[0].message

    def test_positive_augmented_assignment(self):
        src = RMW_PRELUDE + """
    def sneak(self):
        self._hits += 1  # MARK
"""
        findings = only(rc03(src), "RC031")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_rmw_under_lock_is_clean(self):
        src = RMW_PRELUDE + """
    def publish(self):
        with self._lock:
            delta = self._hits - self._published
            self._published = self._hits
        return delta
"""
        assert only(rc03(src), "RC031") == []

    def test_unguarded_attrs_are_clean(self):
        # Attributes never touched under any lock are out of scope.
        src = RMW_PRELUDE + """
    def tune(self):
        self._config = getattr(self, "_config", 0) + 1
"""
        assert only(rc03(src), "RC031") == []


# -- RC032 expensive call under lock -----------------------------------------


class TestExpensiveCallUnderLock:
    def test_positive_dijkstra_under_lock(self):
        src = """
import threading

class BadCache:
    def __init__(self, network):
        self.network = network
        self._lock = threading.Lock()
        self._cache = {}

    def distances(self, node):
        with self._lock:
            if node not in self._cache:
                self._cache[node] = self.network.dijkstra_array(node)  # MARK
            return self._cache[node]
"""
        findings = only(rc03(src), "RC032")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "dijkstra_array" in findings[0].message
        assert "_lock" in findings[0].message

    def test_positive_sleep_under_lock(self):
        src = """
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self._seen = 0

    def poll(self):
        with self._lock:
            time.sleep(0.1)  # MARK
            self._seen += 1
"""
        findings = only(rc03(src), "RC032")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_matcher_idiom_is_clean(self):
        # Probe under the lock, compute outside, install under the
        # lock -- the exact shape the fixed matcher LRU uses.
        src = """
import threading

class GoodCache:
    def __init__(self, network):
        self.network = network
        self._lock = threading.Lock()
        self._cache = {}

    def distances(self, node):
        with self._lock:
            entry = self._cache.get(node)
        if entry is not None:
            return entry
        distances = self.network.dijkstra_array(node)
        with self._lock:
            self._cache[node] = distances
        return distances
"""
        assert only(rc03(src), "RC032") == []

    def test_cheap_call_under_lock_is_clean(self):
        src = """
import threading

class Fine:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._items.sort()
"""
        assert only(rc03(src), "RC032") == []


# -- RC033 unguarded lazy init -----------------------------------------------


class TestUnguardedLazyInit:
    def test_positive_is_none_test(self):
        src = """
import threading

class Lazy:
    def __init__(self):
        self._lock = threading.Lock()
        self._index = None

    def index(self):
        if self._index is None:  # MARK
            self._index = object()
        return self._index
"""
        findings = only(rc03(src), "RC033")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "_index" in findings[0].message

    def test_positive_falsy_test(self):
        src = """
import threading

class Lazy:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}

    def cache(self):
        if not self._cache:  # MARK
            self._cache = {"warm": True}
        return self._cache
"""
        findings = only(rc03(src), "RC033")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]

    def test_locked_lazy_init_is_clean(self):
        src = """
import threading

class Lazy:
    def __init__(self):
        self._lock = threading.Lock()
        self._index = None

    def index(self):
        with self._lock:
            if self._index is None:
                self._index = object()
            return self._index
"""
        assert only(rc03(src), "RC033") == []

    def test_double_checked_idiom_is_clean(self):
        # The repo idiom: unguarded fast-path read of an atomically
        # installed object (into a local), locked re-check + build.
        src = """
import threading

class Lazy:
    def __init__(self):
        self._lock = threading.Lock()
        self._snapshot = None

    def snapshot(self):
        snapshot = self._snapshot
        if snapshot is not None:
            return snapshot
        with self._lock:
            snapshot = self._snapshot
            if snapshot is None:
                snapshot = object()
                self._snapshot = snapshot
            return snapshot
"""
        assert only(rc03(src), "RC033") == []

    def test_lockless_class_is_out_of_scope(self):
        src = """
class Lazy:
    def __init__(self):
        self._index = None

    def index(self):
        if self._index is None:
            self._index = object()
        return self._index
"""
        assert only(rc03(src), "RC033") == []


# -- RC034 lock in pickled state ---------------------------------------------


class TestLockInPickledState:
    def test_positive_no_getstate(self):
        src = """
import threading

class Unpicklable:
    def __init__(self):
        self._lock = threading.Lock()  # MARK
        self._data = {}
"""
        findings = only(rc03(src), "RC034")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "Unpicklable" in findings[0].message

    def test_positive_getstate_keeps_lock(self):
        src = """
import threading

class Leaky:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def __getstate__(self):  # MARK
        return self.__dict__.copy()
"""
        findings = only(rc03(src), "RC034")
        assert [f.line for f in findings] == [line_of(src, "# MARK")]
        assert "_lock" in findings[0].message

    def test_getstate_popping_lock_is_clean(self):
        src = """
import threading

class Clean:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
"""
        assert only(rc03(src), "RC034") == []

    def test_selective_literal_state_is_clean(self):
        src = """
import threading

class Selective:
    def __init__(self):
        self._lock = threading.Lock()
        self._data = {}

    def __getstate__(self):
        return {"_data": self._data}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
"""
        assert only(rc03(src), "RC034") == []

    def test_subclass_super_then_pop_is_clean(self):
        src = """
import threading

class Base:
    def __init__(self):
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

class Child(Base):
    def __init__(self):
        super().__init__()
        self._plans_lock = threading.Lock()

    def __getstate__(self):
        state = super().__getstate__()
        state.pop("_plans_lock", None)
        return state
"""
        assert only(rc03(src), "RC034") == []


# -- the PR-7 regression shape -----------------------------------------------


class TestPr7Regression:
    def test_reverted_publish_cache_metrics_resurfaces(self):
        """Un-fixing the matcher's metrics flush must yield RC031 at
        the exact watermark-advance lines."""
        source = (REPO / "src" / "repro" / "governance" / "fusion"
                  / "map_matching.py").read_text(encoding="utf-8")
        fixed = """        with self._cache_lock:
            hits = self._cache_hits - self._published_hits
            misses = self._cache_misses - self._published_misses
            if not hits and not misses:
                return
            self._published_hits = self._cache_hits
            self._published_misses = self._cache_misses"""
        reverted = """        hits = self._cache_hits - self._published_hits
        misses = self._cache_misses - self._published_misses
        if not hits and not misses:
            return
        self._published_hits = self._cache_hits
        self._published_misses = self._cache_misses"""
        assert fixed in source, "matcher flush no longer matches"
        broken = source.replace(fixed, reverted)
        findings = only(rc03(broken, path="reverted.py"), "RC031")
        expected = [
            line_of(broken, "self._published_hits = self._cache_hits"),
            line_of(broken,
                    "self._published_misses = self._cache_misses"),
        ]
        assert [f.line for f in findings] == expected
        # ... and the pristine file stays clean.
        assert rc03(source, path="original.py") == []


# -- noqa code lists ---------------------------------------------------------


NOQA_BODY = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()  # noqa: RC034 -- test local
        self._n = 0

    def inc(self):
        with self._lock:
            self._n += 1

    def reset(self):
        self._n = 0{suffix}
"""


class TestNoqaLists:
    def test_comma_separated_codes(self):
        src = NOQA_BODY.format(suffix="  # noqa: RC030,RC099")
        assert only(rc03(src), "RC030") == []

    def test_whitespace_separated_codes(self):
        src = NOQA_BODY.format(suffix="  # noqa: RC099 RC030")
        assert only(rc03(src), "RC030") == []

    def test_justification_suffix_not_parsed_as_codes(self):
        src = NOQA_BODY.format(
            suffix="  # noqa: RC030 -- reset is test-only")
        assert only(rc03(src), "RC030") == []

    def test_other_code_does_not_suppress(self):
        src = NOQA_BODY.format(suffix="  # noqa: RC031,RC032")
        assert len(only(rc03(src), "RC030")) == 1

    def test_case_insensitive(self):
        src = NOQA_BODY.format(suffix="  # NOQA: rc030")
        assert only(rc03(src), "RC030") == []


# -- CLI: seeded fixture, SARIF, baseline ------------------------------------


SEEDED = """
import threading
import time

class Shared:
    def __init__(self):
        self._lock = threading.Lock()  # SEED-RC034
        self._snapshot = None
        self._hits = 0
        self._published = 0

    def record(self):
        with self._lock:
            self._hits += 1
            self._published = 0

    def reset(self):
        self._hits = 0  # SEED-RC030

    def publish(self):
        self._published = self._hits  # SEED-RC031

    def snapshot(self):
        if self._snapshot is None:  # SEED-RC033
            self._snapshot = object()
        return self._snapshot

    def wait_for_quiet(self):
        with self._lock:
            time.sleep(0.01)  # SEED-RC032
"""

SEEDS = {
    "RC030": "# SEED-RC030",
    "RC031": "# SEED-RC031",
    "RC032": "# SEED-RC032",
    "RC033": "# SEED-RC033",
    "RC034": "# SEED-RC034",
}


class TestCli:
    def test_seeded_violations_text_and_json(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED, encoding="utf-8")
        report_path = tmp_path / "report.json"

        exit_code = lint_main([str(fixture), "--select", "RC03"])
        text = capsys.readouterr().out
        assert exit_code == 1  # RC030/RC031 are errors

        exit_code = lint_main([str(fixture), "--select", "RC03",
                               "--format=json",
                               "--output", str(report_path)])
        capsys.readouterr()
        assert exit_code == 1
        report = json.loads(report_path.read_text(encoding="utf-8"))

        by_code = {}
        for finding in report["findings"]:
            by_code.setdefault(finding["code"], []).append(finding)
        for code, marker in SEEDS.items():
            expected_line = line_of(SEEDED, marker)
            lines = [f["line"] for f in by_code.get(code, [])]
            assert expected_line in lines, (
                f"{code} not reported at line {expected_line}: "
                f"{report['findings']}")
            expected_text = f"{fixture}:{expected_line}:"
            assert any(expected_text in line and code in line
                       for line in text.splitlines()), (
                f"{code} missing from text output at {expected_text}")

    def test_sarif_output(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED, encoding="utf-8")
        lint_main([str(fixture), "--select", "RC03",
                   "--format=sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"]
                    for rule in run["tool"]["driver"]["rules"]}
        assert {"RC030", "RC031", "RC032", "RC033",
                "RC034"} <= rule_ids
        by_rule = {}
        for result in run["results"]:
            by_rule.setdefault(result["ruleId"], []).append(result)
        for code, marker in SEEDS.items():
            lines = [r["locations"][0]["physicalLocation"]["region"]
                     ["startLine"] for r in by_rule.get(code, [])]
            assert line_of(SEEDED, marker) in lines, code
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["RC030"] == "error"
        assert levels["RC034"] == "warning"

    def test_baseline_roundtrip(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED, encoding="utf-8")
        baseline = tmp_path / "lint.baseline.json"

        # First run writes the baseline and exits 0 (adoption).
        assert lint_main([str(fixture), "--select", "RC03",
                          "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baseline written" in out
        assert baseline.exists()

        # Second run: everything known is suppressed, exit 0.
        assert lint_main([str(fixture), "--select", "RC03",
                          "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out
        assert "baselined finding(s) suppressed" in out

        # A *new* finding still fails.
        fixture.write_text(SEEDED + """
    def second_reset(self):
        self._hits = -1  # fresh RC030
""", encoding="utf-8")
        assert lint_main([str(fixture), "--select", "RC03",
                          "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "RC030" in out

        # --update-baseline absorbs it again.
        assert lint_main([str(fixture), "--select", "RC03",
                          "--baseline", str(baseline),
                          "--update-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(fixture), "--select", "RC03",
                          "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_update_baseline_requires_baseline(self, capsys):
        import pytest
        with pytest.raises(SystemExit):
            lint_main(["--update-baseline"])
        capsys.readouterr()

    def test_list_rules_includes_concurrency_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RC030", "RC031", "RC032", "RC033", "RC034"):
            assert code in out


# -- pickling fixes that RC034 drove -----------------------------------------


class TestGetstateFixes:
    def test_stage_cache_roundtrip(self):
        from repro.core.cache import StageCache

        cache = StageCache()
        assert cache.store(("key",), "ok", {"d": 1}, {"x": [1, 2]})
        clone = pickle.loads(pickle.dumps(cache))
        entry = clone.get(("key",))
        assert entry is not None
        assert entry.delta == {"x": [1, 2]}
        # The clone's lock is fresh and functional.
        assert clone.store(("key2",), "ok", {}, {})

    def test_collecting_tracer_roundtrip(self):
        from repro.core.events import CollectingTracer, emit

        tracer = CollectingTracer()
        emit(tracer, "run_start", run_id="r1")
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.kinds() == ["run_start"]
        emit(clone, "run_end")
        assert clone.kinds() == ["run_start", "run_end"]

    def test_fault_injector_roundtrip(self):
        from repro.core.faults import FaultInjector

        faults = FaultInjector().fail("impute", times=2)
        clone = pickle.loads(pickle.dumps(faults))
        assert len(clone._plans["impute"]) == 2
        # Fresh locks: scheduling on the clone still works.
        clone.delay("forecast", 0.01)
        assert "forecast" in clone._plans


# -- self-check --------------------------------------------------------------


class TestSelfCheck:
    def test_concurrency_family_clean_on_repo(self):
        findings, n_files = analyze_paths(
            [REPO / "src" / "repro", REPO / "examples"],
            select=["RC03"])
        assert n_files > 80
        assert findings == [], [f.render() for f in findings]
