"""Tests for the edge-centric vs path-centric uncertainty models."""

import numpy as np
import pytest

from repro import RoadNetwork
from repro.datasets import TrafficSimulator
from repro.governance.uncertainty import (
    EdgeCentricModel,
    Histogram,
    PathCentricModel,
    TimeVaryingDistribution,
    wasserstein_distance,
)


@pytest.fixture(scope="module")
def setup():
    network = RoadNetwork.grid(5, 5)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.1,
        rng=np.random.default_rng(1),
    )
    paths = [
        network.shortest_path((0, 0), (4, 4)),
        network.shortest_path((0, 4), (4, 0)),
    ]
    rng = np.random.default_rng(11)
    trips = []
    for _ in range(250):
        for path in paths:
            edges = network.path_edges(path)
            times = simulator.sample_edge_times(edges, departure_minute=480,
                                                rng=rng)
            trips.append((path, times, 480.0))
    return network, simulator, paths, trips


class TestTimeVaryingDistribution:
    def test_interval_lookup(self):
        morning = Histogram.point_mass(10.0)
        evening = Histogram.point_mass(20.0)
        tv = TimeVaryingDistribution(
            [(0, 720), (720, 1440)], [morning, evening])
        assert tv.at(100).mean() == pytest.approx(10.0)
        assert tv.at(800).mean() == pytest.approx(20.0)

    def test_wraps_midnight(self):
        tv = TimeVaryingDistribution([(0, 1440)],
                                     [Histogram.point_mass(5.0)])
        assert tv.at(1500).mean() == pytest.approx(5.0)

    def test_fallback_to_nearest(self):
        tv = TimeVaryingDistribution([(0, 100), (1000, 1100)],
                                     [Histogram.point_mass(1.0),
                                      Histogram.point_mass(2.0)])
        assert tv.at(150).mean() == pytest.approx(1.0)
        assert tv.at(900).mean() == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingDistribution([(10, 10)], [Histogram.point_mass(1.0)])
        with pytest.raises(ValueError):
            TimeVaryingDistribution([], [])


class TestEdgeCentricModel:
    def test_fit_covers_observed_edges(self, setup):
        network, _, paths, trips = setup
        model = EdgeCentricModel().fit(trips)
        used = {edge for path in paths for edge in network.path_edges(path)}
        assert model.n_edges == len(used)

    def test_unobserved_edge_raises(self, setup):
        _, _, _, trips = setup
        model = EdgeCentricModel().fit(trips)
        with pytest.raises(KeyError):
            model.edge_distribution((3, 3), (3, 4))

    def test_path_mean_close_to_truth(self, setup):
        _, simulator, paths, trips = setup
        model = EdgeCentricModel().fit(trips)
        estimate = model.path_distribution(paths[0], 480)
        truth = simulator.sample_path_times(
            paths[0], 2000, departure_minute=480,
            rng=np.random.default_rng(5))
        assert estimate.mean() == pytest.approx(truth.mean(), rel=0.12)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            EdgeCentricModel().fit([])

    def test_gmm_representation_close_to_histogram(self, setup):
        """The paper's alternative UQ representation: a GMM fit gives a
        comparable distribution estimate to the raw histogram."""
        _, simulator, paths, trips = setup
        gmm = EdgeCentricModel(representation="gmm",
                               n_components=2).fit(trips)
        histogram = EdgeCentricModel().fit(trips)
        d_gmm = gmm.path_distribution(paths[0], 480)
        d_hist = histogram.path_distribution(paths[0], 480)
        assert d_gmm.mean() == pytest.approx(d_hist.mean(), rel=0.1)
        assert d_gmm.std() == pytest.approx(d_hist.std(), rel=0.35)

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            EdgeCentricModel(representation="parametric")

    def test_mismatched_edge_times_rejected(self, setup):
        _, _, paths, _ = setup
        with pytest.raises(ValueError):
            EdgeCentricModel().fit([(paths[0], [1.0], 0.0)])


class TestPathCentricModel:
    def test_coverage_concatenates_to_path(self, setup):
        _, _, paths, trips = setup
        model = PathCentricModel(min_support=10,
                                 max_subpath_edges=4).fit(trips)
        pieces = model.coverage(paths[0])
        rebuilt = list(pieces[0])
        for piece in pieces[1:]:
            assert rebuilt[-1] == piece[0]
            rebuilt.extend(piece[1:])
        assert rebuilt == list(paths[0])

    def test_longest_pieces_preferred(self, setup):
        _, _, paths, trips = setup
        model = PathCentricModel(min_support=10,
                                 max_subpath_edges=8).fit(trips)
        pieces = model.coverage(paths[0])
        assert len(pieces[0]) - 1 == 8  # whole prefix captured jointly

    def test_path_centric_beats_edge_centric_on_variance(self, setup):
        """The tutorial's central uncertainty claim (E5): the
        path-centric paradigm captures distribution correlations along
        paths that the edge-centric paradigm misses."""
        _, simulator, paths, trips = setup
        edge_model = EdgeCentricModel().fit(trips)
        path_model = PathCentricModel(min_support=10,
                                      max_subpath_edges=8).fit(trips)
        truth = Histogram.from_samples(simulator.sample_path_times(
            paths[0], 3000, departure_minute=480,
            rng=np.random.default_rng(5)))
        edge_estimate = edge_model.path_distribution(paths[0], 480)
        path_estimate = path_model.path_distribution(paths[0], 480)

        edge_error = wasserstein_distance(edge_estimate, truth)
        path_error = wasserstein_distance(path_estimate, truth)
        assert path_error < edge_error
        # Edge-centric systematically underestimates the spread.
        assert edge_estimate.std() < 0.7 * truth.std()
        assert abs(path_estimate.std() - truth.std()) < 0.3 * truth.std()

    def test_falls_back_to_edges_for_unseen_route(self, setup):
        network, _, paths, trips = setup
        model = PathCentricModel(min_support=10).fit(trips)
        # A route mixing pieces of both trained paths was never seen as a
        # whole, but its edges were - coverage should still succeed when
        # edges overlap, otherwise raise KeyError.
        unseen = [(0, 0), (1, 0)]
        first_edges = set(network.path_edges(paths[0]))
        if tuple(unseen) in {tuple(p) for p in (paths[0], paths[1])}:
            pytest.skip("trivial route")
        if (unseen[0], unseen[1]) in first_edges | set(
                network.path_edges(paths[1])):
            distribution = model.path_distribution(unseen)
            assert distribution.mean() > 0
        else:
            with pytest.raises(KeyError):
                model.path_distribution(unseen)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathCentricModel(max_subpath_edges=0)
        with pytest.raises(ValueError):
            PathCentricModel(min_support=0)
        with pytest.raises(ValueError):
            PathCentricModel().fit([])


class TestWasserstein:
    def test_identical_distributions(self):
        histogram = Histogram(0.0, 1.0, [0.5, 0.5])
        assert wasserstein_distance(histogram, histogram) == pytest.approx(
            0.0, abs=1e-9)

    def test_shifted_point_masses(self):
        a = Histogram.point_mass(0.0, width=0.01)
        b = Histogram.point_mass(3.0, width=0.01)
        assert wasserstein_distance(a, b) == pytest.approx(3.0, abs=0.05)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = Histogram.from_samples(rng.normal(0, 1, 300))
        b = Histogram.from_samples(rng.normal(2, 2, 300))
        assert wasserstein_distance(a, b) == pytest.approx(
            wasserstein_distance(b, a), rel=1e-9)
