"""Tests for the explainability layer."""

import numpy as np
import pytest

from repro.datasets import seasonal_series, traffic_speed_dataset
from repro.analytics.anomaly import AutoencoderDetector
from repro.analytics.explainability import (
    SparseSurrogate,
    explanation_accuracy,
    granger_matrix,
    inject_channel_anomalies,
    lagged_correlation_graph,
    permutation_importance,
)


class TestChannelAnomalies:
    def test_cell_labels_shape(self):
        series = seasonal_series(300, n_channels=3,
                                 rng=np.random.default_rng(0))
        corrupted, cells = inject_channel_anomalies(
            series, 0.05, rng=np.random.default_rng(1))
        assert cells.shape == (300, 3)
        assert cells.any()

    def test_only_marked_cells_changed(self):
        series = seasonal_series(300, n_channels=3,
                                 rng=np.random.default_rng(2))
        corrupted, cells = inject_channel_anomalies(
            series, 0.05, rng=np.random.default_rng(3))
        unchanged = ~cells
        assert np.allclose(corrupted.values[unchanged],
                           series.values[unchanged])
        assert not np.allclose(corrupted.values[cells],
                               series.values[cells])


class TestExplanationAccuracy:
    def test_detector_errors_localize_anomalies(self):
        """The metric of [35]: per-cell reconstruction errors should
        identify the corrupted cells."""
        train = seasonal_series(900, n_channels=3,
                                rng=np.random.default_rng(4))
        test = seasonal_series(400, n_channels=3,
                               rng=np.random.default_rng(5))
        corrupted, cells = inject_channel_anomalies(
            test, 0.05, rng=np.random.default_rng(6))
        detector = AutoencoderDetector(window=16, n_epochs=30,
                                       rng=np.random.default_rng(7))
        detector.fit(train)
        accuracy = explanation_accuracy(
            detector.feature_errors(corrupted), cells)
        assert accuracy > 0.9

    def test_random_errors_score_half(self):
        rng = np.random.default_rng(8)
        cells = rng.random((200, 2)) < 0.1
        if not cells.any():
            cells[0, 0] = True
        accuracy = explanation_accuracy(rng.random((200, 2)), cells)
        assert 0.3 < accuracy < 0.7

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            explanation_accuracy(np.zeros((5, 2)),
                                 np.zeros((5, 3), dtype=bool))


class TestPermutationImportance:
    def test_identifies_used_features(self):
        rng = np.random.default_rng(9)
        X = rng.normal(size=(400, 5))
        y = 4.0 * X[:, 1] + 0.01 * rng.normal(size=400)

        def predict(inputs):
            return 4.0 * inputs[:, 1]

        importances = permutation_importance(predict, X, y,
                                             rng=np.random.default_rng(10))
        assert np.argmax(importances) == 1
        assert importances[1] > 10 * max(importances[0], 1e-9)

    def test_ignored_features_near_zero(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(300, 3))
        y = X[:, 0]
        importances = permutation_importance(
            lambda inputs: inputs[:, 0], X, y,
            rng=np.random.default_rng(12))
        assert abs(importances[2]) < 1e-9


class TestSparseSurrogate:
    def test_recovers_true_support(self):
        rng = np.random.default_rng(13)
        X = rng.normal(size=(500, 12))
        black_box = 2.0 * X[:, 3] - 1.5 * X[:, 9]
        surrogate = SparseSurrogate(n_features=2).fit(X, black_box)
        assert set(surrogate.support_) == {3, 9}
        assert surrogate.fidelity(X, black_box) > 0.95

    def test_explanation_sorted_by_magnitude(self):
        rng = np.random.default_rng(14)
        X = rng.normal(size=(300, 6))
        black_box = 5.0 * X[:, 0] + 1.0 * X[:, 1]
        surrogate = SparseSurrogate(n_features=2).fit(X, black_box)
        explanation = surrogate.explanation(list("abcdef"))
        assert explanation[0][0] == "a"
        assert abs(explanation[0][1]) > abs(explanation[1][1])

    def test_fidelity_degrades_for_nonlinear_box(self):
        rng = np.random.default_rng(15)
        X = rng.normal(size=(400, 4))
        linear_box = X[:, 0]
        nonlinear_box = np.sin(3.0 * X[:, 0]) * X[:, 1]
        good = SparseSurrogate(2).fit(X, linear_box).fidelity(X, linear_box)
        poor = SparseSurrogate(2).fit(X, nonlinear_box).fidelity(
            X, nonlinear_box)
        assert good > poor

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SparseSurrogate().predict(np.zeros((2, 3)))


class TestAssociations:
    def test_lagged_correlation_finds_leader(self):
        rng = np.random.default_rng(16)
        n = 500
        leader = rng.normal(size=n).cumsum() * 0.2
        follower = np.zeros(n)
        follower[3:] = leader[:-3]
        values = np.column_stack([leader, follower])
        values += rng.normal(0, 0.01, values.shape)
        from repro import CorrelatedTimeSeries

        dataset = CorrelatedTimeSeries(values)
        strength, lead = lagged_correlation_graph(dataset, max_lag=6)
        assert strength[0, 1] > 0.9
        assert lead[0, 1] == 3  # sensor 0 leads sensor 1 by 3 steps

    def test_granger_directionality(self):
        rng = np.random.default_rng(17)
        n = 600
        driver = rng.normal(size=n)
        driven = np.zeros(n)
        for t in range(1, n):
            driven[t] = 0.9 * driver[t - 1] + 0.05 * rng.normal()
        from repro import CorrelatedTimeSeries

        dataset = CorrelatedTimeSeries(np.column_stack([driver, driven]))
        influence = granger_matrix(dataset, n_lags=3)
        assert influence[0, 1] > 0.5      # driver explains driven
        assert influence[1, 0] < 0.2      # but not vice versa

    def test_traffic_neighbors_more_associated(self):
        dataset = traffic_speed_dataset(n_sensors=8, n_days=5, n_events=0,
                                        rng=np.random.default_rng(18))
        strength, _ = lagged_correlation_graph(dataset, max_lag=2)
        assert strength.max() <= 1.0
        assert np.allclose(strength, strength.T)

    def test_type_checks(self):
        with pytest.raises(TypeError):
            lagged_correlation_graph(np.zeros((10, 3)))
        with pytest.raises(TypeError):
            granger_matrix(np.zeros((10, 3)))
