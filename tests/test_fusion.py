"""Tests for map matching, feature fusion and embedding alignment."""

import numpy as np
import pytest

from repro import RoadNetwork, TimeSeries
from repro.datasets import TrafficSimulator, TrajectoryGenerator
from repro.governance.fusion import (
    CcaAligner,
    HmmMapMatcher,
    add_time_features,
    align_series,
    fuse_series,
    procrustes_align,
    retrieval_accuracy,
    weather_series,
)


@pytest.fixture(scope="module")
def fleet():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(network, rng=np.random.default_rng(0))
    generator = TrajectoryGenerator(simulator, rng=np.random.default_rng(1))
    return network, generator


class TestHmmMapMatcher:
    def test_recovers_route_with_moderate_noise(self, fleet):
        network, generator = fleet
        trips = generator.generate(5, noise_sigma=0.08,
                                   sample_interval=0.4, min_hops=4)
        matcher = HmmMapMatcher(network, sigma=0.1, beta=0.5)
        for true_path, trajectory in trips:
            matched = matcher.matched_path(trajectory)
            assert network.route_distance(true_path, matched) < 0.35

    def test_beats_nearest_edge_baseline_under_noise(self, fleet):
        """The HMM exploits route continuity that per-point snapping
        ignores - the core claim of [17]."""
        network, generator = fleet
        trips = generator.generate(6, noise_sigma=0.25,
                                   sample_interval=0.5, min_hops=5)
        matcher = HmmMapMatcher(network, sigma=0.25, beta=0.5,
                                candidate_radius=1.0)
        hmm_scores, naive_scores = [], []
        for true_path, trajectory in trips:
            matched = matcher.matched_path(trajectory)
            hmm_scores.append(network.route_distance(true_path, matched))
            true_edges = set(network.path_edges(true_path))
            snapped = set()
            for point in trajectory:
                candidates = network.candidate_edges((point.x, point.y), 1.0)
                if candidates:
                    u, v, _, _ = candidates[0]
                    snapped.add((u, v))
            union = snapped | true_edges
            naive_scores.append(1.0 - len(snapped & true_edges) / len(union))
        assert np.mean(hmm_scores) <= np.mean(naive_scores)

    def test_off_map_point_raises(self, fleet):
        network, _ = fleet
        matcher = HmmMapMatcher(network, sigma=0.05, candidate_radius=0.1)
        from repro import Trajectory

        far = Trajectory([(100.0, 100.0, 0.0), (101.0, 100.0, 1.0)])
        with pytest.raises(ValueError):
            matcher.match(far)

    def test_match_returns_one_candidate_per_point(self, fleet):
        network, generator = fleet
        (path, trajectory), = generator.generate(1, noise_sigma=0.05,
                                                 min_hops=4)
        matcher = HmmMapMatcher(network, sigma=0.1)
        matched = matcher.match(trajectory)
        assert len(matched) == len(trajectory)
        for u, v, distance, fraction in matched:
            assert network.has_edge(u, v)
            assert 0.0 <= fraction <= 1.0

    def test_type_checks(self, fleet):
        network, _ = fleet
        with pytest.raises(TypeError):
            HmmMapMatcher("not a network")
        matcher = HmmMapMatcher(network)
        with pytest.raises(TypeError):
            matcher.match([(0, 0, 0)])


class TestFeatureFusion:
    def test_align_interpolates(self):
        coarse = TimeSeries([0.0, 10.0], timestamps=[0.0, 10.0])
        aligned = align_series({"a": coarse}, np.arange(0.0, 11.0))
        assert np.allclose(aligned["a"].values[:, 0], np.arange(11.0))

    def test_align_rejects_bad_axis(self):
        series = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            align_series({"a": series}, [1.0, 1.0])

    def test_fuse_column_names(self):
        a = TimeSeries(np.zeros((5, 1)))
        b = TimeSeries(np.zeros((5, 2)))
        fused, names = fuse_series({"traffic": a, "weather": b})
        assert fused.values.shape == (5, 3)
        assert names == ["traffic", "weather_0", "weather_1"]

    def test_fuse_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse_series({})

    def test_add_time_features(self):
        series = TimeSeries(np.zeros(10), timestamps=np.arange(10.0))
        extended = add_time_features(series, period=10)
        assert extended.n_channels == 3
        phase = 2 * np.pi * np.arange(10) / 10
        assert np.allclose(extended.values[:, 1], np.sin(phase))

    def test_weather_series_shape(self):
        weather = weather_series(200, rng=np.random.default_rng(2))
        assert weather.values.shape == (200, 2)
        assert np.all(weather.values[:, 1] >= 0)  # rain non-negative


class TestAlignment:
    def test_procrustes_recovers_rotation(self):
        rng = np.random.default_rng(3)
        source = rng.normal(size=(100, 4))
        # Random orthogonal matrix.
        q, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        target = source @ q
        recovered = procrustes_align(source, target)
        assert np.allclose(recovered, q, atol=1e-8)

    def test_procrustes_output_orthogonal(self):
        rng = np.random.default_rng(4)
        w = procrustes_align(rng.normal(size=(30, 3)),
                             rng.normal(size=(30, 3)))
        assert np.allclose(w.T @ w, np.eye(3), atol=1e-8)

    def test_procrustes_shape_mismatch(self):
        with pytest.raises(ValueError):
            procrustes_align(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_cca_finds_shared_signal(self):
        rng = np.random.default_rng(5)
        shared = rng.normal(size=(300, 2))
        x = np.column_stack([shared + 0.1 * rng.normal(size=(300, 2)),
                             rng.normal(size=(300, 3))])
        y = np.column_stack([shared @ rng.normal(size=(2, 2))
                             + 0.1 * rng.normal(size=(300, 2)),
                             rng.normal(size=(300, 4))])
        aligner = CcaAligner(n_components=2).fit(x, y)
        assert aligner.correlations[0] > 0.85

    def test_cca_transforms_correlated(self):
        rng = np.random.default_rng(6)
        shared = rng.normal(size=(400, 1))
        x = shared + 0.05 * rng.normal(size=(400, 1))
        y = -2 * shared + 0.05 * rng.normal(size=(400, 1))
        aligner = CcaAligner(n_components=1).fit(x, y)
        zx = aligner.transform_x(x)[:, 0]
        zy = aligner.transform_y(y)[:, 0]
        assert abs(np.corrcoef(zx, zy)[0, 1]) > 0.95

    def test_cca_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CcaAligner().transform_x(np.zeros((3, 2)))

    def test_cca_row_mismatch(self):
        with pytest.raises(ValueError):
            CcaAligner().fit(np.zeros((5, 2)), np.zeros((6, 2)))

    def test_retrieval_accuracy_perfect_alignment(self):
        rng = np.random.default_rng(7)
        embeddings = rng.normal(size=(50, 8))
        assert retrieval_accuracy(embeddings, embeddings) == 1.0

    def test_retrieval_accuracy_random_low(self):
        rng = np.random.default_rng(8)
        a = rng.normal(size=(100, 8))
        b = rng.normal(size=(100, 8))
        assert retrieval_accuracy(a, b) < 0.2
