"""Tests for stochastic routing, skylines, preferences, imitation."""

import numpy as np
import pytest

from repro import RoadNetwork
from repro.datasets import TrafficSimulator
from repro.governance.uncertainty import PathCentricModel
from repro.decision import (
    ContextualPreferenceModel,
    DeadlineUtility,
    ImitationRouter,
    RiskAverseUtility,
    SkylineRouter,
    StochasticRouter,
    dominates,
    pareto_front,
    scalarize,
)


@pytest.fixture(scope="module")
def routing_setup():
    network = RoadNetwork.grid(6, 6)
    simulator = TrafficSimulator(
        network, sigma_correlated=0.35, sigma_independent=0.12,
        rng=np.random.default_rng(1))
    origin, destination = (0, 0), (5, 5)
    candidates = network.k_shortest_paths(origin, destination, 8)
    rng = np.random.default_rng(2)
    trips = []
    for _ in range(100):
        for path in candidates:
            edges = network.path_edges(path)
            times = simulator.sample_edge_times(edges,
                                                departure_minute=480,
                                                rng=rng)
            trips.append((path, times, 480.0))
    model = PathCentricModel(min_support=10,
                             max_subpath_edges=10).fit(trips)
    return network, simulator, model, origin, destination


class TestStochasticRouter:
    def test_best_path_returns_candidate(self, routing_setup):
        network, _, model, origin, destination = routing_setup
        router = StochasticRouter(network, model, n_candidates=8)
        path, distribution, utility = router.best_path(
            origin, destination, RiskAverseUtility(scale=20.0),
            departure_minute=480)
        assert path[0] == origin and path[-1] == destination
        assert distribution.mean() > 0

    def test_on_time_probability_calibrated(self, routing_setup):
        network, simulator, model, origin, destination = routing_setup
        router = StochasticRouter(network, model, n_candidates=8)
        _, mean_dist = router.mean_cost_route(origin, destination,
                                              departure_minute=480)
        deadline = mean_dist.quantile(0.8)
        path, probability = router.on_time_route(
            origin, destination, deadline, departure_minute=480)
        empirical = (simulator.sample_path_times(
            path, 800, departure_minute=480,
            rng=np.random.default_rng(3)) <= deadline).mean()
        assert probability == pytest.approx(empirical, abs=0.12)

    def test_deadline_shifts_choice_toward_reliability(self,
                                                       routing_setup):
        """The arrival-window phenomenon of [53]: the optimal path
        depends on the deadline."""
        network, _, model, origin, destination = routing_setup
        router = StochasticRouter(network, model, n_candidates=8)
        deadlines = np.linspace(10.0, 60.0, 12)
        results, paths = router.arrival_windows(
            origin, destination, deadlines, departure_minute=480)
        assert len(results) == 12
        probabilities = [p for _, _, p in results]
        assert np.all(np.diff(probabilities) >= -1e-9)  # monotone in dl

    def test_best_departure_prefers_offpeak(self, routing_setup):
        """With time-varying costs, leaving off-peak beats leaving into
        the rush for the same travel budget ([51])."""
        network, simulator, _, origin, destination = routing_setup
        # Fit a model covering two departure regimes: 3am (free flow)
        # and 8am (rush).
        candidates = network.k_shortest_paths(origin, destination, 4)
        rng = np.random.default_rng(40)
        trips = []
        for departure in (180.0, 480.0):
            for _ in range(60):
                for path in candidates:
                    edges = network.path_edges(path)
                    times = simulator.sample_edge_times(
                        edges, departure, rng=rng)
                    trips.append((path, times, departure))
        model = PathCentricModel(
            min_support=10, max_subpath_edges=10,
            intervals=((0, 360), (360, 1440))).fit(trips)
        router = StochasticRouter(network, model, n_candidates=4)
        budget = model.path_distribution(
            candidates[0], 180).quantile(0.7)
        departure, path, probability = router.best_departure(
            origin, destination, budget, [180.0, 480.0])
        assert departure == 180.0  # off-peak wins
        assert probability > 0.5

    def test_best_departure_no_candidates(self, routing_setup):
        network, _, model, origin, destination = routing_setup
        router = StochasticRouter(network, model)
        with pytest.raises(ValueError):
            router.best_departure(origin, destination, 10.0, [])

    def test_rejects_bad_cost_model(self, routing_setup):
        network = routing_setup[0]
        with pytest.raises(TypeError):
            StochasticRouter(network, object())

    def test_rejects_bad_utility(self, routing_setup):
        network, _, model, origin, destination = routing_setup
        router = StochasticRouter(network, model)
        with pytest.raises(TypeError):
            router.best_path(origin, destination, lambda c: -c)


class TestPareto:
    def test_dominates_basics(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_pareto_front_known(self):
        costs = np.array([
            [1.0, 5.0],   # frontier
            [3.0, 3.0],   # frontier
            [5.0, 1.0],   # frontier
            [4.0, 4.0],   # dominated by (3,3)
            [6.0, 6.0],   # dominated
        ])
        assert pareto_front(costs) == [0, 1, 2]

    def test_scalarize_picks_weighted_best(self):
        costs = np.array([[1.0, 10.0], [10.0, 1.0]])
        assert scalarize(costs, [0.9, 0.1]) == 0
        assert scalarize(costs, [0.1, 0.9]) == 1

    def test_skyline_routes_mutually_nondominated(self):
        network = RoadNetwork.grid(5, 5)
        rng = np.random.default_rng(4)
        for u, v in network.edges():
            length = network.edge_length(u, v)
            network.set_edge_attribute(u, v, "time",
                                       length * rng.uniform(0.5, 2.0))
            network.set_edge_attribute(u, v, "energy",
                                       length * rng.uniform(0.5, 2.0))
        router = SkylineRouter(network, ["time", "energy"])
        skyline = router.skyline((0, 0), (3, 3))
        assert skyline
        costs = np.array([cost for _, cost in skyline])
        assert len(pareto_front(costs)) == len(skyline)
        for path, _ in skyline:
            assert path[0] == (0, 0) and path[-1] == (3, 3)

    def test_skyline_contains_both_extremes(self):
        network = RoadNetwork.grid(4, 4)
        rng = np.random.default_rng(5)
        for u, v in network.edges():
            length = network.edge_length(u, v)
            network.set_edge_attribute(u, v, "time",
                                       length * rng.uniform(0.3, 3.0))
            network.set_edge_attribute(u, v, "energy",
                                       length * rng.uniform(0.3, 3.0))
        router = SkylineRouter(network, ["time", "energy"])
        skyline = router.skyline((0, 0), (3, 3))
        costs = np.array([cost for _, cost in skyline])
        import networkx as nx

        best_time = nx.dijkstra_path_length(
            network.graph, (0, 0), (3, 3), weight="time")
        assert costs[:, 0].min() == pytest.approx(best_time, rel=1e-9)

    def test_skyline_validation(self):
        network = RoadNetwork.grid(3, 3)
        with pytest.raises(ValueError):
            SkylineRouter(network, ["time"])
        router = SkylineRouter(network, ["time", "energy"])
        with pytest.raises(ValueError):
            router.skyline((0, 0), (0, 0))


class TestPreference:
    def test_recovers_context_weights(self):
        model = ContextualPreferenceModel(3)
        rng = np.random.default_rng(6)
        truth = {"peak": np.array([0.7, 0.2, 0.1]),
                 "offpeak": np.array([0.1, 0.2, 0.7])}
        for context, weights in truth.items():
            for _ in range(40):
                options = rng.uniform(0, 1, size=(5, 3))
                chosen = int(np.argmin(options @ weights))
                model.observe(
                    context, options[chosen],
                    [options[i] for i in range(5) if i != chosen])
        model.fit()
        for context, weights in truth.items():
            learned = model.weights(context)
            assert np.argmax(learned) == np.argmax(weights)
            assert learned.sum() == pytest.approx(1.0)

    def test_agreement_on_heldout_choices(self):
        model = ContextualPreferenceModel(2)
        rng = np.random.default_rng(7)
        weights = np.array([0.8, 0.2])
        for _ in range(50):
            options = rng.uniform(0, 1, size=(4, 2))
            chosen = int(np.argmin(options @ weights))
            model.observe("ctx", options[chosen],
                          [options[i] for i in range(4) if i != chosen])
        model.fit()
        heldout = []
        for _ in range(50):
            options = rng.uniform(0, 1, size=(4, 2))
            heldout.append((int(np.argmin(options @ weights)), options))
        assert model.agreement("ctx", heldout) > 0.85

    def test_unknown_context(self):
        model = ContextualPreferenceModel(2)
        with pytest.raises(KeyError):
            model.weights("nowhere")

    def test_fit_without_observations(self):
        with pytest.raises(RuntimeError):
            ContextualPreferenceModel(2).fit()

    def test_observation_validation(self):
        model = ContextualPreferenceModel(2)
        with pytest.raises(ValueError):
            model.observe("ctx", [1.0, 2.0, 3.0], [])


class TestImitation:
    @pytest.fixture(scope="class")
    def biased_experts(self):
        """Experts avoid the congested city center, so their routes
        systematically differ from shortest paths."""
        import networkx as nx

        network = RoadNetwork.grid(7, 7)
        rng = np.random.default_rng(8)

        def expert_cost(u, v):
            (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
            mid_x, mid_y = (x1 + x2) / 2, (y1 + y2) / 2
            central = np.exp(-((mid_x - 3) ** 2 + (mid_y - 3) ** 2) / 4.0)
            return network.edge_length(u, v) * (1 + 2.0 * central)

        paths = []
        nodes = network.nodes()
        while len(paths) < 60:
            a, b = rng.choice(len(nodes), 2, replace=False)
            a, b = nodes[int(a)], nodes[int(b)]
            noise = float(rng.uniform(0.95, 1.05))
            path = nx.dijkstra_path(
                network.graph, a, b,
                weight=lambda u, v, data: expert_cost(u, v) * noise)
            if len(path) >= 6:
                paths.append(path)
        return network, paths

    def test_imitation_beats_shortest_path(self, biased_experts):
        """E22's claim: routes learned from expert trajectories match
        expert behaviour better than plain shortest paths."""
        network, paths = biased_experts
        router = ImitationRouter(network).fit(paths[:45])
        test = paths[45:]
        imitation = router.imitation_score(test)
        shortest = np.mean([
            1.0 - network.route_distance(
                p, network.shortest_path(p[0], p[-1]))
            for p in test
        ])
        assert imitation > shortest

    def test_popular_unavoided_edges_cheaper(self, biased_experts):
        network, paths = biased_experts
        router = ImitationRouter(network).fit(paths)
        # A popular, non-avoided edge should cost less than its length.
        best = None
        for u, v in network.edges():
            if router.edge_avoidance(u, v) <= 0 and \
                    router.edge_popularity(u, v) > 0.3:
                best = (u, v)
                break
        assert best is not None
        assert router.routing_cost(*best) < network.edge_length(*best)

    def test_avoided_edges_penalized(self, biased_experts):
        network, paths = biased_experts
        router = ImitationRouter(network,
                                 popularity_bonus=0.0).fit(paths)
        avoided = max(network.edges(),
                      key=lambda e: router.edge_avoidance(*e))
        assert router.routing_cost(*avoided) > \
            network.edge_length(*avoided)

    def test_smoothing_extends_coverage(self, biased_experts):
        network, paths = biased_experts
        smoothed = ImitationRouter(network, smooth=True).fit(paths[:5])
        raw = ImitationRouter(network, smooth=False).fit(paths[:5])
        assert smoothed.popularity_coverage() > raw.popularity_coverage()

    def test_requires_fit(self, biased_experts):
        network, _ = biased_experts
        with pytest.raises(RuntimeError):
            ImitationRouter(network).route((0, 0), (1, 1))

    def test_empty_experts(self, biased_experts):
        network, _ = biased_experts
        with pytest.raises(ValueError):
            ImitationRouter(network).fit([])
