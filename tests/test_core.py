"""Tests for the pipeline (Figure 1) and the benchmarking harness."""

import numpy as np
import pytest

from repro.core import DecisionPipeline, RunReport
from repro.benchmarking import ForecastingLeaderboard
from repro.datasets import seasonal_series
from repro.analytics.forecasting import (
    ARForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)


class TestPipeline:
    def build(self):
        pipeline = DecisionPipeline("test run")
        pipeline.add_data("load", lambda s: ("loaded", {"rows": 100}))
        pipeline.add_governance("impute",
                                lambda s: s.setdefault("clean", True)
                                and "imputed")
        pipeline.add_analytics("forecast", lambda s: "forecasted")
        pipeline.add_decision("choose", lambda s: "chose option A")
        return pipeline

    def test_stages_run_in_layer_order(self):
        order = []
        pipeline = DecisionPipeline()
        pipeline.add_decision("d", lambda s: order.append("d") or "d")
        pipeline.add_data("a", lambda s: order.append("a") or "a")
        pipeline.add_analytics("c", lambda s: order.append("c") or "c")
        pipeline.add_governance("b", lambda s: order.append("b") or "b")
        pipeline.run()
        assert order == ["a", "b", "c", "d"]

    def test_state_threads_through(self):
        pipeline = DecisionPipeline()
        pipeline.add_data("set", lambda s: s.update(x=1) or "set")
        pipeline.add_decision("use",
                              lambda s: f"x was {s['x']}")
        state, report = pipeline.run()
        assert state["x"] == 1
        assert report.stages("decision")[0].summary == "x was 1"

    def test_report_contents(self):
        _, report = self.build().run()
        assert isinstance(report, RunReport)
        assert len(report.records) == 4
        assert report.stages("governance")[0].name == "impute"
        assert report.stages("data")[0].details == {"rows": 100}
        rendered = report.render()
        assert "impute" in rendered and "decision" in rendered

    def test_without_stage_ablation(self):
        pipeline = self.build()
        ablated = pipeline.without_stage("impute")
        assert "impute" not in ablated.stage_names
        assert "impute" in pipeline.stage_names  # original untouched
        state, report = ablated.run()
        assert len(report.records) == 3

    def test_without_unknown_stage(self):
        with pytest.raises(KeyError):
            self.build().without_stage("nothing")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionPipeline().run()

    def test_invalid_layer_and_function(self):
        pipeline = DecisionPipeline()
        with pytest.raises(ValueError):
            pipeline.add_stage("magic", "x", lambda s: "x")
        with pytest.raises(TypeError):
            pipeline.add_data("x", "not callable")

    def test_initial_state_copied(self):
        initial = {"k": 1}
        pipeline = DecisionPipeline()
        pipeline.add_data("mutate", lambda s: s.update(k=2) or "done")
        state, _ = pipeline.run(initial)
        assert state["k"] == 2
        assert initial["k"] == 1


class TestLeaderboard:
    @pytest.fixture(scope="class")
    def board(self):
        board = ForecastingLeaderboard(horizon=12, n_origins=3)
        board.add_model("naive", lambda: NaiveForecaster())
        board.add_model("snaive", lambda: SeasonalNaiveForecaster(96))
        board.add_model("ar", lambda: ARForecaster(8, seasonal_period=96))
        board.add_dataset(
            "seasonal_a", seasonal_series(600,
                                          rng=np.random.default_rng(0)))
        board.add_dataset(
            "seasonal_b", seasonal_series(700, amplitude=3.0,
                                          rng=np.random.default_rng(1)))
        board.run()
        return board

    def test_grid_complete(self, board):
        assert len(board.results) == 3 * 2
        for row in board.results:
            assert "mae" in row and "rmse" in row and "smape" in row
            assert row["seconds"] >= 0

    def test_table_shapes(self, board):
        table = board.table("mae")
        assert table["scores"].shape == (3, 2)
        assert len(table["mean_rank"]) == 3

    def test_seasonal_models_outrank_naive(self, board):
        table = board.table("mae")
        ranks = dict(zip(table["models"], table["mean_rank"]))
        assert ranks["snaive"] < ranks["naive"]
        assert ranks["ar"] < ranks["naive"]

    def test_failed_model_gets_nan_not_crash(self):
        board = ForecastingLeaderboard(horizon=12, n_origins=2)
        board.add_model("hw_too_long",
                        lambda: SeasonalNaiveForecaster(100000))
        board.add_dataset("short",
                          seasonal_series(300,
                                          rng=np.random.default_rng(2)))
        results = board.run()
        assert np.isnan(results[0]["mae"])

    def test_render_is_text_table(self, board):
        text = board.render("mae")
        assert "mean_rank" in text
        assert "snaive" in text

    def test_run_without_registration(self):
        with pytest.raises(RuntimeError):
            ForecastingLeaderboard().run()

    def test_unknown_metric(self, board):
        with pytest.raises(KeyError):
            board.table("accuracy")


class TestDetectionLeaderboard:
    @pytest.fixture(scope="class")
    def board(self):
        from repro.benchmarking import DetectionLeaderboard
        from repro.datasets import inject_anomalies
        from repro.analytics.anomaly import (
            AutoencoderDetector,
            SpectralResidualDetector,
        )

        board = DetectionLeaderboard()
        board.add_detector("spectral",
                           lambda: SpectralResidualDetector())
        board.add_detector("autoencoder", lambda: AutoencoderDetector(
            window=24, n_epochs=25, rng=np.random.default_rng(0)))
        for name, seed in (("easy", 1), ("noisy", 2)):
            noise = 0.3 if name == "easy" else 0.8
            train = seasonal_series(800, noise_scale=noise,
                                    rng=np.random.default_rng(seed))
            test_clean = seasonal_series(
                400, noise_scale=noise,
                rng=np.random.default_rng(seed + 10))
            test, labels = inject_anomalies(
                test_clean, 0.05, rng=np.random.default_rng(seed + 20))
            board.add_dataset(name, train, test, labels)
        board.run()
        return board

    def test_grid_complete(self, board):
        assert len(board.results) == 2 * 2
        for row in board.results:
            assert 0.0 <= row["roc_auc"] <= 1.0

    def test_detectors_above_chance(self, board):
        table = board.table("roc_auc")
        assert np.nanmin(table["scores"]) > 0.5

    def test_render(self, board):
        text = board.render("best_f1")
        assert "spectral" in text and "mean_rank" in text

    def test_validation(self, board):
        from repro.benchmarking import DetectionLeaderboard

        empty = DetectionLeaderboard()
        with pytest.raises(RuntimeError):
            empty.run()
        with pytest.raises(RuntimeError):
            empty.table("roc_auc")
        with pytest.raises(ValueError):
            empty.add_dataset(
                "bad", None, seasonal_series(
                    50, rng=np.random.default_rng(3)),
                np.zeros(50, dtype=bool))
        with pytest.raises(KeyError):
            board.table("accuracy")
