"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "repro" in output
        assert "decision" in output

    def test_demo_runs_full_pipeline(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        for layer in ("data", "governance", "analytics", "decision"):
            assert f"[{layer}]" in output

    def test_leaderboard_prints_table(self, capsys):
        assert main(["leaderboard"]) == 0
        output = capsys.readouterr().out
        assert "mean_rank" in output
        assert "snaive" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["explode"])
