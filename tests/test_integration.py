"""Cross-layer integration tests: the paradigm's layers composed
end-to-end, as the paper's Figure 1 prescribes.

Each test wires real components from at least two layers together and
checks an end-to-end property (not a unit behaviour).
"""

import numpy as np
import pytest

from repro import DecisionPipeline, RoadNetwork, TimeSeries
from repro.analytics.forecasting import (
    ARForecaster,
    GaussianForecaster,
    GraphFilterForecaster,
)
from repro.analytics.generative import BlockBootstrapGenerator
from repro.analytics.metrics import mae
from repro.datasets import (
    TrafficSimulator,
    TrajectoryGenerator,
    cloud_demand_dataset,
    seasonal_series,
    traffic_speed_dataset,
)
from repro.datatypes import CorrelatedTimeSeries
from repro.governance.fusion import HmmMapMatcher
from repro.governance.imputation import impute_seasonal
from repro.governance.uncertainty import EdgeCentricModel
from repro.decision import (
    DeadlineUtility,
    PredictiveScaler,
    StochasticRouter,
    simulate_scaling,
)


class TestGovernanceIntoAnalytics:
    def test_imputed_data_feeds_graph_forecaster(self):
        """Corrupt -> impute -> forecast: the full left half of Fig. 1."""
        full = traffic_speed_dataset(n_sensors=10, n_days=5,
                                     rng=np.random.default_rng(0))
        train, test = full.split(0.9)
        observed = train.corrupt(0.3, np.random.default_rng(1),
                                 block_length=6)
        completed = impute_seasonal(observed.as_timeseries(), 96)
        clean = CorrelatedTimeSeries(
            completed.values, adjacency=observed.adjacency,
            timestamps=observed.timestamps)
        model = GraphFilterForecaster(n_lags=6, n_hops=1).fit(clean)
        prediction = model.predict(len(test))
        # The imputed pipeline forecasts within 50% of the
        # fully-observed upper bound.
        upper_bound_model = GraphFilterForecaster(n_lags=6,
                                                  n_hops=1).fit(train)
        upper = mae(test.values, upper_bound_model.predict(len(test)))
        actual = mae(test.values, prediction)
        assert actual < 1.5 * upper


class TestFusionIntoUncertaintyIntoDecision:
    def test_map_matched_trips_drive_routing(self):
        """GPS traces -> map matching -> uncertainty model -> route
        choice under a deadline: the taxi scenario end to end."""
        network = RoadNetwork.grid(5, 5)
        simulator = TrafficSimulator(network,
                                     rng=np.random.default_rng(2))
        generator = TrajectoryGenerator(simulator,
                                        rng=np.random.default_rng(3))
        matcher = HmmMapMatcher(network, sigma=0.08, beta=0.5)
        origin, destination = (0, 0), (4, 4)
        candidates = network.k_shortest_paths(origin, destination, 5)
        raw = generator.generate_on_paths(
            candidates * 25, departure_minute=480,
            sample_interval=0.4, noise_sigma=0.04)
        trips = []
        times_rng = np.random.default_rng(4)
        for true_path, trajectory in raw:
            matched = matcher.matched_path(trajectory)
            # The uncertainty model is fit from *matched* routes plus
            # traversal durations - the governance product.
            if matched[0] != origin or matched[-1] != destination:
                continue
            edges = network.path_edges(matched)
            durations = simulator.sample_edge_times(edges, 480,
                                                    rng=times_rng)
            trips.append((matched, durations, 480.0))
        assert len(trips) > 30  # matching succeeded for many trips

        model = EdgeCentricModel().fit(trips)
        router = StochasticRouter(network, model, n_candidates=5)
        deadline = model.path_distribution(candidates[0],
                                           480).quantile(0.9)
        path, probability = router.on_time_route(origin, destination,
                                                 deadline,
                                                 departure_minute=480)
        assert path[0] == origin and path[-1] == destination
        assert 0.5 < probability <= 1.0


class TestAnalyticsIntoDecision:
    def test_probabilistic_forecast_drives_scaler(self):
        """Forecast distributions -> provisioning decisions."""
        demand, _ = cloud_demand_dataset(n_days=8,
                                         rng=np.random.default_rng(5))
        scaler = PredictiveScaler(slo_target=0.1, seasonal_period=144,
                                  horizon=3)
        result = simulate_scaling(demand, scaler, warmup=2 * 144,
                                  lead_time=3)
        # The decision layer meets (approximately) the SLO it was asked
        # to meet - analytics uncertainty translated into capacity.
        assert result["violations"] < 0.2

    def test_generative_scenarios_bound_forecasts(self):
        """Generated scenarios are consistent with the probabilistic
        forecaster: the point forecast lies inside the scenario band."""
        series = seasonal_series(900, rng=np.random.default_rng(6))
        train, _ = series.split(0.9)
        forecaster = GaussianForecaster(
            n_lags=12, seasonal_period=96).fit(train)
        points = forecaster.predict(48)[:, 0]
        generator = BlockBootstrapGenerator(
            block_length=24, period=96,
            rng=np.random.default_rng(7)).fit(train)
        phase = len(train) % 96  # continue the history's seasonal cycle
        low = generator.scenario_quantile(48, 0.02, n_paths=100,
                                          start_phase=phase)
        high = generator.scenario_quantile(48, 0.98, n_paths=100,
                                           start_phase=phase)
        inside = np.mean((points >= low) & (points <= high))
        assert inside > 0.7


class TestFullPipeline:
    def test_four_layer_pipeline_runs_and_reports(self):
        """A complete data->governance->analytics->decision run."""
        pipeline = DecisionPipeline("integration")

        def load(state):
            series = seasonal_series(600,
                                     rng=np.random.default_rng(8))
            state["raw"] = series.corrupt(0.2,
                                          np.random.default_rng(9))
            return "loaded"

        def govern(state):
            state["clean"] = impute_seasonal(state["raw"], 96)
            return "imputed"

        def analyze(state):
            model = ARForecaster(n_lags=12,
                                 seasonal_period=96).fit(state["clean"])
            state["forecast"] = model.predict(24)
            return "forecast ready"

        def decide(state):
            threshold = float(np.quantile(
                state["clean"].values, 0.9))
            state["alert"] = bool(
                (state["forecast"] > threshold).any())
            return f"alert={state['alert']}"

        pipeline.add_data("load", load)
        pipeline.add_governance("impute", govern)
        pipeline.add_analytics("forecast", analyze)
        pipeline.add_decision("alert", decide)
        state, report = pipeline.run()

        assert "alert" in state
        assert [r.layer for r in report.records] == [
            "data", "governance", "analytics", "decision"]
        assert state["forecast"].shape == (24, 1)

    def test_deadline_utility_consistent_with_histogram_cdf(self):
        """Decision-layer expected utility equals governance-layer CDF:
        the distribution contract between the two layers."""
        from repro.governance.uncertainty import Histogram

        rng = np.random.default_rng(10)
        cost = Histogram.from_samples(rng.gamma(4, 2.5, 2000),
                                      n_bins=40)
        utility = DeadlineUtility(10.0)
        assert utility.expected(cost) == pytest.approx(cost.cdf(10.0),
                                                       abs=1e-9)
