"""Tests for repro.datatypes.trajectory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GpsPoint, Trajectory


def straight_line(n=10, speed=2.0):
    return Trajectory([(speed * t, 0.0, float(t)) for t in range(n)])


class TestGpsPoint:
    def test_distance(self):
        assert GpsPoint(0, 0, 0).distance_to(GpsPoint(3, 4, 1)) == 5.0

    def test_equality_and_hash(self):
        assert GpsPoint(1, 2, 3) == GpsPoint(1, 2, 3)
        assert hash(GpsPoint(1, 2, 3)) == hash(GpsPoint(1, 2, 3))


class TestConstruction:
    def test_accepts_tuples_and_points(self):
        trajectory = Trajectory([(0, 0, 0), GpsPoint(1, 0, 1)])
        assert len(trajectory) == 2

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            Trajectory([(0, 0, 0)])

    def test_rejects_nonincreasing_times(self):
        with pytest.raises(ValueError):
            Trajectory([(0, 0, 1), (1, 0, 1)])


class TestMeasures:
    def test_duration(self):
        assert straight_line(5).duration() == 4.0

    def test_length(self):
        assert straight_line(5, speed=2.0).length() == pytest.approx(8.0)

    def test_average_speed(self):
        assert straight_line(5, speed=2.0).average_speed() == pytest.approx(2.0)

    def test_segment_speeds_constant(self):
        speeds = straight_line(6, speed=3.0).segment_speeds()
        assert np.allclose(speeds, 3.0)


class TestTransformations:
    def test_resample_interval(self):
        resampled = straight_line(10).resample(2.0)
        gaps = np.diff(resampled.times())
        assert np.all(gaps > 0)
        assert resampled.times()[0] == 0.0
        assert resampled.times()[-1] == 9.0

    def test_resample_positions_on_line(self):
        resampled = straight_line(10, speed=2.0).resample(0.5)
        xs = resampled.coordinates()
        assert np.allclose(xs[:, 0], 2.0 * resampled.times())

    def test_resample_invalid(self):
        with pytest.raises(ValueError):
            straight_line().resample(0.0)

    def test_noise_zero_sigma_identity(self):
        original = straight_line()
        noisy = original.with_noise(0.0, np.random.default_rng(0))
        assert np.allclose(noisy.coordinates(), original.coordinates())

    def test_noise_displaces_points(self):
        original = straight_line(50)
        noisy = original.with_noise(0.5, np.random.default_rng(0))
        displacement = np.linalg.norm(
            noisy.coordinates() - original.coordinates(), axis=1
        )
        assert displacement.mean() > 0.1
        assert np.array_equal(noisy.times(), original.times())

    def test_noise_negative_sigma(self):
        with pytest.raises(ValueError):
            straight_line().with_noise(-1.0)

    def test_dropped_keeps_endpoints(self):
        original = straight_line(50)
        sparse = original.dropped(0.1, np.random.default_rng(0))
        assert sparse[0] == original[0]
        assert sparse[-1] == original[-1]
        assert len(sparse) < len(original)

    def test_dropped_full_keep(self):
        original = straight_line(10)
        assert len(original.dropped(1.0, np.random.default_rng(0))) == 10

    def test_dropped_invalid_fraction(self):
        with pytest.raises(ValueError):
            straight_line().dropped(0.0)


@settings(deadline=None, max_examples=30)
@given(
    n=st.integers(min_value=3, max_value=30),
    interval=st.floats(min_value=0.2, max_value=5.0),
)
def test_resample_preserves_endpoints_and_length_upper_bound(n, interval):
    """Resampling keeps endpoints and can only shorten the polyline
    (piecewise-linear interpolation never adds length)."""
    rng = np.random.default_rng(n)
    points = [(rng.normal(), rng.normal(), float(t)) for t in range(n)]
    trajectory = Trajectory(points)
    resampled = trajectory.resample(interval)
    assert resampled.times()[0] == trajectory.times()[0]
    assert resampled.times()[-1] == trajectory.times()[-1]
    assert resampled.length() <= trajectory.length() + 1e-9
