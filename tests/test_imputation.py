"""Tests for temporal, spatial and spatio-temporal imputation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RoadNetwork, TimeSeries
from repro.datasets import seasonal_series
from repro.governance.imputation import (
    GcnCompleter,
    KalmanImputer,
    LabelPropagationCompleter,
    ODMatrixCompleter,
    backcast,
    impute_linear,
    impute_locf,
    impute_seasonal,
    line_graph_adjacency,
)


def corrupted_seasonal(missing=0.3, seed=0):
    clean = seasonal_series(600, rng=np.random.default_rng(seed))
    gappy = clean.corrupt(missing, np.random.default_rng(seed + 1))
    return clean, gappy


def mae_on_missing(clean, gappy, filled):
    holes = ~gappy.mask
    return np.abs(filled.values[holes] - clean.values[holes]).mean()


class TestTemporalImputation:
    def test_all_methods_complete(self):
        _, gappy = corrupted_seasonal()
        for filled in (
            impute_locf(gappy),
            impute_linear(gappy),
            impute_seasonal(gappy, 96),
            KalmanImputer(5).impute(gappy),
        ):
            assert filled.is_complete()

    def test_observed_entries_untouched(self):
        clean, gappy = corrupted_seasonal()
        for filled in (impute_locf(gappy), impute_linear(gappy),
                       impute_seasonal(gappy, 96),
                       KalmanImputer(5).impute(gappy)):
            observed = gappy.mask
            assert np.allclose(filled.values[observed],
                               gappy.values[observed])

    def test_linear_exact_on_linear_signal(self):
        clean = TimeSeries(np.arange(50, dtype=float))
        gappy = clean.corrupt(0.4, np.random.default_rng(2))
        filled = impute_linear(gappy)
        # Interior points are exactly recovered; endpoints may be flat.
        interior = np.zeros(50, dtype=bool)
        observed = np.flatnonzero(gappy.mask[:, 0])
        interior[observed[0]:observed[-1] + 1] = True
        holes = ~gappy.mask[:, 0] & interior
        assert np.allclose(filled.values[holes, 0],
                           clean.values[holes, 0])

    def test_locf_carries_forward(self):
        gappy = TimeSeries([1.0, np.nan, np.nan, 4.0])
        filled = impute_locf(gappy)
        assert np.allclose(filled.values[:, 0], [1.0, 1.0, 1.0, 4.0])

    def test_locf_backfills_leading_gap(self):
        gappy = TimeSeries([np.nan, 2.0, 3.0])
        filled = impute_locf(gappy)
        assert filled.values[0, 0] == 2.0

    def test_seasonal_beats_linear_on_long_gaps(self):
        clean = seasonal_series(960, noise_scale=0.05,
                                rng=np.random.default_rng(3))
        gappy = clean.corrupt(0.25, np.random.default_rng(4),
                              block_length=24)
        linear_err = mae_on_missing(clean, gappy, impute_linear(gappy))
        seasonal_err = mae_on_missing(clean, gappy,
                                      impute_seasonal(gappy, 96))
        assert seasonal_err < linear_err

    def test_kalman_beats_locf(self):
        clean, gappy = corrupted_seasonal(missing=0.4, seed=5)
        locf_err = mae_on_missing(clean, gappy, impute_locf(gappy))
        kalman_err = mae_on_missing(clean, gappy,
                                    KalmanImputer(8).impute(gappy))
        assert kalman_err < locf_err

    def test_kalman_handles_all_missing_channel(self):
        values = np.column_stack([np.full(20, np.nan), np.arange(20.0)])
        filled = KalmanImputer(3).impute(TimeSeries(values))
        assert filled.is_complete()

    def test_kalman_type_check(self):
        with pytest.raises(TypeError):
            KalmanImputer().impute([1, 2, 3])

    def test_backcast_shapes(self):
        clean, _ = corrupted_seasonal()
        result = backcast(clean, 10)
        assert result.shape == (10, clean.n_channels)

    def test_backcast_seasonal_uses_profile(self):
        clean = seasonal_series(480, noise_scale=0.0,
                                rng=np.random.default_rng(6))
        result = backcast(clean, 96, period=96)
        # Backcasting exactly one period should reproduce the profile.
        assert np.allclose(result[:, 0], clean.values[:96, 0], atol=0.15)

    def test_backcast_trend(self):
        clean = TimeSeries(np.arange(100, dtype=float))
        result = backcast(clean, 5)
        assert np.allclose(result[:, 0], [-5, -4, -3, -2, -1], atol=1e-6)


class TestSpatialCompletion:
    @pytest.fixture
    def network_and_truth(self):
        network = RoadNetwork.grid(6, 6)
        rng = np.random.default_rng(7)
        truth = {}
        for u, v in network.edges():
            (x1, y1), (x2, y2) = network.edge_endpoints(u, v)
            # Smooth spatial field: weight varies with location.
            truth[(u, v)] = 10.0 + 3.0 * np.sin(0.5 * (x1 + x2)) + \
                2.0 * np.cos(0.5 * (y1 + y2)) + rng.normal(0, 0.1)
        return network, truth

    def observe(self, truth, fraction, seed=8):
        rng = np.random.default_rng(seed)
        edges = list(truth)
        n_observed = max(1, int(fraction * len(edges)))
        chosen = rng.choice(len(edges), size=n_observed, replace=False)
        return {edges[i]: truth[edges[i]] for i in chosen}

    def test_line_graph_symmetric(self):
        network = RoadNetwork.grid(3, 3)
        _, adjacency = line_graph_adjacency(network)
        assert np.allclose(adjacency, adjacency.T)
        assert np.all(np.diag(adjacency) == 0)

    def test_label_propagation_completes_all(self, network_and_truth):
        network, truth = network_and_truth
        observed = self.observe(truth, 0.5)
        completed = LabelPropagationCompleter().complete(network, observed)
        assert set(completed) == set(network.edges())

    def test_label_propagation_clamps_observed(self, network_and_truth):
        network, truth = network_and_truth
        observed = self.observe(truth, 0.5)
        completed = LabelPropagationCompleter().complete(network, observed)
        for edge, weight in observed.items():
            assert completed[edge] == pytest.approx(weight)

    def test_label_propagation_beats_mean(self, network_and_truth):
        network, truth = network_and_truth
        observed = self.observe(truth, 0.4)
        completed = LabelPropagationCompleter().complete(network, observed)
        mean = np.mean(list(observed.values()))
        hidden = [e for e in truth if e not in observed]
        lp_error = np.mean([abs(completed[e] - truth[e]) for e in hidden])
        mean_error = np.mean([abs(mean - truth[e]) for e in hidden])
        assert lp_error < mean_error

    def test_gcn_beats_mean(self, network_and_truth):
        network, truth = network_and_truth
        observed = self.observe(truth, 0.4)
        completer = GcnCompleter(rng=np.random.default_rng(9))
        completed = completer.complete(network, observed)
        mean = np.mean(list(observed.values()))
        hidden = [e for e in truth if e not in observed]
        gcn_error = np.mean([abs(completed[e] - truth[e]) for e in hidden])
        mean_error = np.mean([abs(mean - truth[e]) for e in hidden])
        assert gcn_error < mean_error

    def test_gcn_loss_decreases(self, network_and_truth):
        network, truth = network_and_truth
        observed = self.observe(truth, 0.5)
        completer = GcnCompleter(n_iterations=200,
                                 rng=np.random.default_rng(10))
        completer.complete(network, observed)
        losses = completer.training_losses
        assert losses[-1] < losses[0]

    def test_empty_observations_rejected(self, network_and_truth):
        network, _ = network_and_truth
        with pytest.raises(ValueError):
            LabelPropagationCompleter().complete(network, {})
        with pytest.raises(ValueError):
            GcnCompleter().complete(network, {})

    def test_unknown_edge_rejected(self, network_and_truth):
        network, _ = network_and_truth
        with pytest.raises(KeyError):
            LabelPropagationCompleter().complete(network, {("x", "y"): 1.0})


class TestODCompletion:
    def make_frames(self, n_frames=24, n_regions=8, seed=11):
        rng = np.random.default_rng(seed)
        attraction = rng.uniform(0.5, 2.0, n_regions)
        production = rng.uniform(0.5, 2.0, n_regions)
        base = np.outer(production, attraction) * 10.0
        time_factor = 1.0 + 0.5 * np.sin(
            2 * np.pi * np.arange(n_frames) / 24)
        frames = base[None] * time_factor[:, None, None]
        frames += rng.normal(0, 0.3, frames.shape)
        return np.clip(frames, 0, None)

    def test_complete_fills_everything(self):
        frames = self.make_frames()
        rng = np.random.default_rng(12)
        mask = rng.random(frames.shape) > 0.4
        completed = ODMatrixCompleter().complete(
            np.where(mask, frames, np.nan))
        assert not np.isnan(completed).any()

    def test_observed_passthrough(self):
        frames = self.make_frames()
        rng = np.random.default_rng(13)
        mask = rng.random(frames.shape) > 0.4
        gappy = np.where(mask, frames, np.nan)
        completed = ODMatrixCompleter().complete(gappy)
        assert np.allclose(completed[mask], frames[mask])

    def test_estimates_nonnegative(self):
        frames = self.make_frames()
        rng = np.random.default_rng(14)
        mask = rng.random(frames.shape) > 0.5
        completed = ODMatrixCompleter().complete(
            np.where(mask, frames, np.nan))
        assert np.all(completed >= 0)

    def test_beats_global_mean(self):
        frames = self.make_frames()
        rng = np.random.default_rng(15)
        mask = rng.random(frames.shape) > 0.4
        gappy = np.where(mask, frames, np.nan)
        completed = ODMatrixCompleter().complete(gappy)
        mean = frames[mask].mean()
        model_error = np.abs(completed[~mask] - frames[~mask]).mean()
        mean_error = np.abs(mean - frames[~mask]).mean()
        assert model_error < mean_error

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ODMatrixCompleter().complete(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            ODMatrixCompleter().complete(np.full((2, 2, 2), np.nan))
        with pytest.raises(ValueError):
            ODMatrixCompleter().complete(np.zeros((2, 2, 2)),
                                         mask=np.ones((1, 2, 2), dtype=bool))


@settings(deadline=None, max_examples=15)
@given(missing=st.floats(min_value=0.05, max_value=0.5),
       seed=st.integers(0, 50))
def test_imputers_idempotent_on_complete_series(missing, seed):
    """Imputing a complete series changes nothing."""
    rng = np.random.default_rng(seed)
    series = TimeSeries(rng.normal(size=(40, 2)))
    assert np.allclose(impute_linear(series).values, series.values)
    assert np.allclose(impute_locf(series).values, series.values)
    assert np.allclose(impute_seasonal(series, 8).values, series.values)
