"""Tests for utility functions and stochastic dominance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.governance.uncertainty import Histogram
from repro.decision import (
    DeadlineUtility,
    RiskAverseUtility,
    RiskNeutralUtility,
    RiskSeekingUtility,
    certainty_equivalent,
    dominance_prune,
    expected_utility,
    first_order_dominates,
    second_order_dominates,
    select_best,
)


def normal_cost(mean, std, seed=0, n=3000):
    rng = np.random.default_rng(seed)
    return Histogram.from_samples(rng.normal(mean, std, n), n_bins=40)


class TestUtilities:
    def test_all_utilities_decreasing_in_cost(self):
        costs = np.linspace(0.0, 10.0, 50)
        for utility in (RiskNeutralUtility(),
                        RiskAverseUtility(scale=5.0),
                        RiskSeekingUtility(scale=5.0)):
            values = utility(costs)
            assert np.all(np.diff(values) < 0)

    def test_risk_neutral_ranks_by_mean(self):
        cheap = normal_cost(5.0, 3.0, seed=1)
        costly = normal_cost(6.0, 0.1, seed=2)
        utility = RiskNeutralUtility()
        assert utility.expected(cheap) > utility.expected(costly)

    def test_risk_averse_prefers_reliable_option(self):
        # Same mean, different spread: the averse agent takes the
        # reliable one, the neutral agent is indifferent.
        risky = normal_cost(10.0, 4.0, seed=3)
        safe = normal_cost(10.0, 0.5, seed=4)
        averse = RiskAverseUtility(aversion=2.0, scale=10.0)
        assert averse.expected(safe) > averse.expected(risky)
        neutral = RiskNeutralUtility()
        assert neutral.expected(safe) == pytest.approx(
            neutral.expected(risky), abs=0.2)

    def test_risk_seeking_prefers_gamble(self):
        risky = normal_cost(10.0, 4.0, seed=5)
        safe = normal_cost(10.0, 0.5, seed=6)
        seeking = RiskSeekingUtility(seeking=2.0, scale=10.0)
        assert seeking.expected(risky) > seeking.expected(safe)

    def test_deadline_utility_is_on_time_probability(self):
        cost = normal_cost(10.0, 2.0, seed=7)
        utility = DeadlineUtility(12.0)
        assert utility.expected(cost) == pytest.approx(
            cost.cdf(12.0), abs=0.02)

    def test_expected_utility_type_checks(self):
        with pytest.raises(TypeError):
            expected_utility(normal_cost(1, 1), lambda c: -c)
        with pytest.raises(TypeError):
            RiskNeutralUtility().expected("not a histogram")

    def test_certainty_equivalent_exceeds_mean_when_averse(self):
        cost = normal_cost(10.0, 3.0, seed=8)
        averse = RiskAverseUtility(aversion=2.0, scale=10.0)
        equivalent = certainty_equivalent(cost, averse)
        assert equivalent > cost.mean()

    def test_certainty_equivalent_equals_mean_when_neutral(self):
        cost = normal_cost(10.0, 3.0, seed=9)
        equivalent = certainty_equivalent(cost, RiskNeutralUtility())
        assert equivalent == pytest.approx(cost.mean(), abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RiskAverseUtility(aversion=0.0)
        with pytest.raises(ValueError):
            RiskSeekingUtility(seeking=-1.0)


class TestDominance:
    def test_fsd_clear_shift(self):
        cheap = normal_cost(5.0, 1.0, seed=10)
        costly = normal_cost(9.0, 1.0, seed=11)
        assert first_order_dominates(cheap, costly)
        assert not first_order_dominates(costly, cheap)

    def test_fsd_fails_on_crossing_cdfs(self):
        tight = normal_cost(10.0, 0.3, seed=12)
        wide = normal_cost(10.0, 3.0, seed=13)
        assert not first_order_dominates(tight, wide)
        assert not first_order_dominates(wide, tight)

    def test_ssd_resolves_mean_preserving_spread(self):
        # An exact mean-preserving spread (empirical draws would make
        # the means differ slightly and SSD is sharp at the mean).
        tight = Histogram(10.0, 0.5, [1.0])
        wide = Histogram(5.0, 10.0, [0.5, 0.5])  # mass at 5 and 15
        assert second_order_dominates(tight, wide)
        assert not second_order_dominates(wide, tight)

    def test_fsd_implies_ssd(self):
        cheap = normal_cost(5.0, 1.0, seed=16)
        costly = normal_cost(9.0, 1.0, seed=17)
        assert second_order_dominates(cheap, costly)

    def test_no_self_dominance(self):
        cost = normal_cost(5.0, 1.0, seed=18)
        assert not first_order_dominates(cost, cost)
        assert not second_order_dominates(cost, cost)

    def test_type_checks(self):
        with pytest.raises(TypeError):
            first_order_dominates(normal_cost(1, 1), "x")


class TestPruning:
    def make_candidates(self):
        # Three clearly dominated, three on the efficient frontier.
        return [
            normal_cost(5.0, 1.0, seed=20),    # frontier (cheap)
            normal_cost(8.0, 0.3, seed=21),    # frontier (reliable)
            normal_cost(6.5, 0.6, seed=22),    # frontier (middle)
            normal_cost(9.0, 1.2, seed=23),    # dominated
            normal_cost(11.0, 2.0, seed=24),   # dominated
            normal_cost(8.5, 0.9, seed=25),    # dominated-ish
        ]

    def test_prune_removes_dominated(self):
        candidates = self.make_candidates()
        survivors = dominance_prune(candidates)
        assert 0 in survivors
        assert 4 not in survivors
        assert len(survivors) < len(candidates)

    def test_ssd_prunes_at_least_as_much(self):
        candidates = self.make_candidates()
        fsd = dominance_prune(candidates, order=1)
        ssd = dominance_prune(candidates, order=2)
        assert set(ssd) <= set(fsd)

    def test_pruning_preserves_optimum_across_risk_profiles(self):
        """E18's correctness claim: the expected-utility optimum always
        survives FSD pruning, whatever the (decreasing) risk profile."""
        candidates = self.make_candidates()
        for utility in (RiskNeutralUtility(),
                        RiskAverseUtility(aversion=2.0, scale=10.0),
                        RiskSeekingUtility(seeking=2.0, scale=10.0),
                        DeadlineUtility(7.0)):
            pruned_best, _, n_pruned = select_best(
                candidates, utility, prune=True)
            full_best, _, n_full = select_best(
                candidates, utility, prune=False)
            assert pruned_best == full_best
            assert n_pruned <= n_full

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            dominance_prune([normal_cost(1, 1)], order=3)

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            select_best([], RiskNeutralUtility())


@settings(deadline=None, max_examples=20)
@given(
    shift=st.floats(min_value=0.5, max_value=5.0),
    seed=st.integers(0, 100),
)
def test_fsd_from_pure_shift_property(shift, seed):
    """A pure rightward shift of a cost distribution is always
    FSD-dominated by the original."""
    rng = np.random.default_rng(seed)
    base = Histogram.from_samples(rng.gamma(3.0, 2.0, 500), n_bins=30)
    shifted = base.shift(shift)
    assert first_order_dominates(base, shifted)
    assert not first_order_dominates(shifted, base)
