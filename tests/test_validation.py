"""Tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_float_array,
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
    ensure_rng,
)


class TestAsFloatArray:
    def test_converts_lists(self):
        result = as_float_array([1, 2, 3], "x")
        assert result.dtype == float
        assert result.shape == (3,)

    def test_ndim_enforced(self):
        with pytest.raises(ValueError):
            as_float_array([[1.0]], "x", ndim=1)

    def test_empty_rejected_by_default(self):
        with pytest.raises(ValueError):
            as_float_array([], "x")

    def test_empty_allowed_when_requested(self):
        assert as_float_array([], "x", allow_empty=True).size == 0


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive_low=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive_high=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5, "x")
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")

    def test_rejects_bool_and_strings(self):
        with pytest.raises(TypeError):
            check_fraction(True, "x")
        with pytest.raises(TypeError):
            check_fraction("0.5", "x")


class TestPositivity:
    def test_check_positive(self):
        assert check_positive(2, "x") == 2
        with pytest.raises(ValueError):
            check_positive(0, "x")
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")


class TestProbabilityVector:
    def test_normalizes(self):
        result = check_probability_vector([2.0, 2.0], "x")
        assert np.allclose(result, [0.5, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-1.0, 2.0], "x")

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.0, 0.0], "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability_vector([np.nan, 1.0], "x")


class TestEnsureRng:
    def test_passes_generator_through(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_creates_deterministic_generator(self):
        a = ensure_rng(42).normal()
        b = ensure_rng(42).normal()
        assert a == b

    def test_none_creates_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
