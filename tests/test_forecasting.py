"""Tests for the forecasting family."""

import numpy as np
import pytest

from repro import TimeSeries
from repro.datasets import seasonal_series, traffic_speed_dataset
from repro.analytics.forecasting import (
    ARForecaster,
    DriftForecaster,
    EnsembleForecaster,
    ExogenousForecaster,
    GaussianForecaster,
    GraphFilterForecaster,
    HoltForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
    QuantileForecaster,
    SeasonalNaiveForecaster,
    SimpleExponentialSmoothing,
    VARForecaster,
    ridge_fit,
    rolling_origin_evaluation,
)
from repro.analytics.metrics import mae


@pytest.fixture(scope="module")
def seasonal():
    return seasonal_series(800, rng=np.random.default_rng(0))


def all_point_forecasters():
    return [
        NaiveForecaster(),
        SeasonalNaiveForecaster(96),
        DriftForecaster(),
        SimpleExponentialSmoothing(),
        HoltForecaster(),
        HoltWintersForecaster(96),
        ARForecaster(n_lags=8),
        VARForecaster(n_lags=4),
    ]


class TestContract:
    @pytest.mark.parametrize("forecaster", all_point_forecasters(),
                             ids=lambda f: type(f).__name__)
    def test_shape_contract(self, forecaster, seasonal):
        prediction = forecaster.forecast(seasonal, 7)
        assert prediction.shape == (7, seasonal.n_channels)
        assert np.isfinite(prediction).all()

    @pytest.mark.parametrize("forecaster", all_point_forecasters(),
                             ids=lambda f: type(f).__name__)
    def test_predict_before_fit(self, forecaster):
        with pytest.raises(RuntimeError):
            forecaster.predict(3)

    def test_incomplete_series_rejected(self):
        gappy = TimeSeries([1.0, np.nan, 3.0, 4.0])
        with pytest.raises(ValueError):
            NaiveForecaster().fit(gappy)

    def test_type_check(self):
        with pytest.raises(TypeError):
            NaiveForecaster().fit([1, 2, 3])

    def test_invalid_horizon(self, seasonal):
        model = NaiveForecaster().fit(seasonal)
        with pytest.raises(ValueError):
            model.predict(0)


class TestClassical:
    def test_naive_repeats_last(self):
        series = TimeSeries([1.0, 2.0, 7.0])
        assert np.allclose(NaiveForecaster().forecast(series, 3), 7.0)

    def test_seasonal_naive_cycles(self):
        series = TimeSeries(np.tile([1.0, 2.0, 3.0], 4))
        prediction = SeasonalNaiveForecaster(3).forecast(series, 6)
        assert np.allclose(prediction[:, 0], [1, 2, 3, 1, 2, 3])

    def test_seasonal_naive_needs_period(self):
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(10).fit(TimeSeries([1.0, 2.0]))

    def test_drift_extends_line(self):
        series = TimeSeries(np.arange(10.0))
        prediction = DriftForecaster().forecast(series, 3)
        assert np.allclose(prediction[:, 0], [10, 11, 12])

    def test_ses_flat_forecast(self, seasonal):
        prediction = SimpleExponentialSmoothing().forecast(seasonal, 5)
        assert np.allclose(prediction, prediction[0])

    def test_holt_captures_trend(self):
        series = TimeSeries(2.0 * np.arange(50.0) + 1.0)
        prediction = HoltForecaster(alpha=0.8, beta=0.5).forecast(series, 4)
        expected = 2.0 * np.arange(50, 54) + 1.0
        assert np.allclose(prediction[:, 0], expected, atol=0.5)

    def test_holt_winters_beats_naive_on_seasonal(self, seasonal):
        train, test = seasonal.split(0.9)
        hw = HoltWintersForecaster(96).forecast(train, len(test))
        naive = NaiveForecaster().forecast(train, len(test))
        assert mae(test.values, hw) < mae(test.values, naive)

    def test_holt_winters_needs_two_periods(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(96).fit(TimeSeries(np.zeros(100)))


class TestRidge:
    def test_exact_on_linear_data(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = X @ true_w + 3.0
        w, b = ridge_fit(X, y, 1e-8)
        assert np.allclose(w, true_w, atol=1e-5)
        assert b[0] == pytest.approx(3.0, abs=1e-5)

    def test_regularization_shrinks(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([[5.0], [5.0], [5.0]])
        w_small, _ = ridge_fit(X, y, 0.01)
        w_large, _ = ridge_fit(X, y, 1000.0)
        assert np.linalg.norm(w_large) < np.linalg.norm(w_small)


class TestAR:
    def test_learns_ar1(self):
        rng = np.random.default_rng(3)
        values = np.zeros(500)
        for t in range(1, 500):
            values[t] = 0.8 * values[t - 1] + rng.normal(0, 0.1)
        model = ARForecaster(n_lags=1, alpha=1e-6).fit(TimeSeries(values))
        assert model._weights[0, 0] == pytest.approx(0.8, abs=0.05)

    def test_seasonal_lag_improves(self, seasonal):
        train, test = seasonal.split(0.9)
        plain = ARForecaster(n_lags=8).forecast(train, len(test))
        with_season = ARForecaster(n_lags=8, seasonal_period=96).forecast(
            train, len(test))
        assert mae(test.values, with_season) < mae(test.values, plain)

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            ARForecaster(n_lags=10).fit(TimeSeries(np.zeros(10)))

    def test_n_parameters(self, seasonal):
        model = ARForecaster(n_lags=4).fit(seasonal)
        assert model.n_parameters == 4 * 1 + 1

    def test_predict_from_matches_predict_on_training_history(self,
                                                              seasonal):
        model = ARForecaster(n_lags=8).fit(seasonal)
        direct = model.predict(5)
        replay = model.predict_from(seasonal.values, 5)
        assert np.allclose(direct, replay)

    def test_predict_from_requires_context(self, seasonal):
        model = ARForecaster(n_lags=8).fit(seasonal)
        with pytest.raises(ValueError):
            model.predict_from(np.zeros((3, 1)), 2)


class TestVARAndExogenous:
    def test_var_uses_cross_channel_signal(self):
        rng = np.random.default_rng(4)
        n = 600
        driver = rng.normal(size=n).cumsum() * 0.1
        follower = np.zeros(n)
        follower[1:] = driver[:-1]  # channel 1 is channel 0 lagged
        values = np.column_stack([driver, follower])
        values += rng.normal(0, 0.01, values.shape)
        series = TimeSeries(values)
        train, test = series.split(0.95)
        var = VARForecaster(n_lags=2).forecast(train, 1)
        assert var[0, 1] == pytest.approx(train.values[-1, 0], abs=0.1)

    def test_exogenous_known_future_beats_frozen(self):
        rng = np.random.default_rng(5)
        n = 600
        covariate = np.sin(np.arange(n) / 5.0)
        target = 2.0 * covariate + rng.normal(0, 0.05, n)
        series = TimeSeries(np.column_stack([target, covariate]))
        train, test = series.split(0.9)
        horizon = len(test)
        model = ExogenousForecaster([0], n_lags=4).fit(train)
        with_future = model.predict(horizon,
                                    future_covariates=test.values)
        frozen = model.predict(horizon)
        truth = test.values[:, :1]
        assert mae(truth, with_future) < mae(truth, frozen)

    def test_exogenous_validation(self):
        with pytest.raises(ValueError):
            ExogenousForecaster([])
        series = TimeSeries(np.random.default_rng(6).normal(size=(50, 2)))
        with pytest.raises(ValueError):
            ExogenousForecaster([5]).fit(series)
        model = ExogenousForecaster([0]).fit(series)
        with pytest.raises(ValueError):
            model.predict(3, future_covariates=np.zeros((2, 2)))


class TestGraph:
    @pytest.fixture(scope="class")
    def traffic(self):
        return traffic_speed_dataset(n_sensors=10, n_days=7,
                                     rng=np.random.default_rng(7))

    def test_fit_predict_shapes(self, traffic):
        train, test = traffic.split(0.9)
        model = GraphFilterForecaster(n_lags=4, n_hops=1).fit(train)
        prediction = model.predict(len(test))
        assert prediction.shape == (len(test), traffic.n_sensors)

    def test_graph_hops_help_on_correlated_data(self, traffic):
        train, test = traffic.split(0.9)
        no_graph = GraphFilterForecaster(n_lags=6, n_hops=0).fit(train)
        with_graph = GraphFilterForecaster(n_lags=6, n_hops=2).fit(train)
        error_no = mae(test.values, no_graph.predict(len(test)))
        error_with = mae(test.values, with_graph.predict(len(test)))
        assert error_with <= error_no * 1.05  # never much worse

    def test_predictions_bounded(self, traffic):
        train, _ = traffic.split(0.9)
        model = GraphFilterForecaster(n_lags=6, n_hops=2).fit(train)
        prediction = model.predict(200)
        assert np.all(np.isfinite(prediction))
        assert prediction.max() < 2 * train.values.max()

    def test_type_and_completeness_checks(self, traffic):
        with pytest.raises(TypeError):
            GraphFilterForecaster().fit(traffic.as_timeseries())
        rng = np.random.default_rng(8)
        gappy = traffic.corrupt(0.1, rng)
        with pytest.raises(ValueError):
            GraphFilterForecaster().fit(gappy)


class TestProbabilistic:
    def test_gaussian_distributions_widen_with_horizon(self, seasonal):
        model = GaussianForecaster(n_lags=12,
                                   seasonal_period=96).fit(seasonal)
        distributions = model.predict_distribution(6)
        stds = [d.std() for d in distributions]
        assert stds[-1] > stds[0]

    def test_gaussian_point_matches_ar(self, seasonal):
        model = GaussianForecaster(n_lags=12).fit(seasonal)
        points = model.predict(5)
        distributions = model.predict_distribution(5)
        for step in range(5):
            assert distributions[step].mean() == pytest.approx(
                points[step, 0], abs=3 * distributions[step].width)

    def test_sample_paths_shape(self, seasonal):
        model = GaussianForecaster(n_lags=12).fit(seasonal)
        paths = model.sample_paths(10, 50, rng=np.random.default_rng(9))
        assert paths.shape == (50, 10)

    def test_quantile_bands_ordered(self, seasonal):
        model = QuantileForecaster((0.1, 0.5, 0.9), n_lags=12,
                                   rng=np.random.default_rng(10))
        model.fit(seasonal)
        bands = model.predict_quantiles(8)
        assert np.all(np.diff(bands, axis=1) >= 0)

    def test_quantile_coverage_reasonable(self, seasonal):
        model = QuantileForecaster((0.1, 0.5, 0.9), n_lags=24,
                                   rng=np.random.default_rng(11))
        model.fit(seasonal)
        coverage = model.coverage(seasonal)
        assert 0.6 < coverage <= 1.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            QuantileForecaster(())
        with pytest.raises(ValueError):
            QuantileForecaster((0.0, 0.5))


class TestEnsemble:
    def test_beats_worst_member(self, seasonal):
        train, test = seasonal.split(0.9)
        members = [NaiveForecaster(), SeasonalNaiveForecaster(96),
                   ARForecaster(n_lags=8, seasonal_period=96)]
        ensemble = EnsembleForecaster(members)
        prediction = ensemble.forecast(train, len(test))
        errors = [
            mae(test.values, m.forecast(train, len(test)))
            for m in [NaiveForecaster(), SeasonalNaiveForecaster(96),
                      ARForecaster(n_lags=8, seasonal_period=96)]
        ]
        assert mae(test.values, prediction) < max(errors)

    def test_weights_favor_good_members(self, seasonal):
        ensemble = EnsembleForecaster(
            [NaiveForecaster(), SeasonalNaiveForecaster(96)],
            weighting="inverse_error")
        ensemble.fit(seasonal)
        # Seasonal-naive is far better on seasonal data.
        assert ensemble.weights_[1] > ensemble.weights_[0]

    def test_unusable_member_excluded(self, seasonal):
        short = seasonal.slice(0, 100)  # too short for HW(96)
        ensemble = EnsembleForecaster(
            [NaiveForecaster(), HoltWintersForecaster(96)])
        ensemble.fit(short)
        assert ensemble.weights_[1] == 0.0
        assert ensemble.predict(3).shape == (3, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleForecaster([])
        with pytest.raises(ValueError):
            EnsembleForecaster([NaiveForecaster()], weighting="bogus")


class TestRollingOrigin:
    def test_scores_per_origin(self, seasonal):
        result = rolling_origin_evaluation(
            lambda: NaiveForecaster(), seasonal, horizon=10, n_origins=4)
        assert len(result["per_origin"]) == 4
        assert result["score"] == pytest.approx(
            np.mean(result["per_origin"]))

    def test_too_short(self):
        with pytest.raises(ValueError):
            rolling_origin_evaluation(
                lambda: NaiveForecaster(), TimeSeries(np.zeros(20)),
                horizon=15, n_origins=3)

    def test_better_model_scores_better(self, seasonal):
        naive = rolling_origin_evaluation(
            lambda: NaiveForecaster(), seasonal, horizon=24, n_origins=4)
        seasonal_model = rolling_origin_evaluation(
            lambda: SeasonalNaiveForecaster(96), seasonal, horizon=24,
            n_origins=4)
        assert seasonal_model["score"] < naive["score"]


class TestDirectForecaster:
    def test_shape_contract(self, seasonal):
        from repro.analytics.forecasting import DirectForecaster

        model = DirectForecaster(n_lags=8, horizon=12).fit(seasonal)
        prediction = model.predict(12)
        assert prediction.shape == (12, seasonal.n_channels)
        assert np.isfinite(prediction).all()

    def test_partial_horizon_allowed(self, seasonal):
        from repro.analytics.forecasting import DirectForecaster

        model = DirectForecaster(n_lags=8, horizon=12).fit(seasonal)
        assert model.predict(5).shape == (5, 1)

    def test_beyond_trained_horizon_rejected(self, seasonal):
        from repro.analytics.forecasting import DirectForecaster

        model = DirectForecaster(n_lags=8, horizon=12).fit(seasonal)
        with pytest.raises(ValueError):
            model.predict(13)

    def test_lead_one_matches_recursive_first_step(self, seasonal):
        """At lead 1 the direct and recursive strategies train the same
        regression (same features, same targets)."""
        from repro.analytics.forecasting import DirectForecaster

        direct = DirectForecaster(n_lags=8, horizon=4).fit(seasonal)
        recursive = ARForecaster(n_lags=8).fit(seasonal)
        assert direct.predict(1)[0, 0] == pytest.approx(
            recursive.predict(1)[0, 0], abs=0.1)

    def test_beats_recursive_on_long_unanchored_horizon(self, seasonal):
        from repro.analytics.forecasting import DirectForecaster

        train, test = seasonal.split(0.9)
        horizon = len(test)
        direct = DirectForecaster(n_lags=12, horizon=horizon).fit(train)
        recursive = ARForecaster(n_lags=12).fit(train)
        assert mae(test.values, direct.predict(horizon)) < \
            mae(test.values, recursive.predict(horizon)) * 1.05

    def test_too_short_series(self):
        from repro.analytics.forecasting import DirectForecaster

        with pytest.raises(ValueError):
            DirectForecaster(n_lags=8, horizon=50).fit(
                TimeSeries(np.zeros(40)))

    def test_n_parameters(self, seasonal):
        from repro.analytics.forecasting import DirectForecaster

        model = DirectForecaster(n_lags=4, horizon=3).fit(seasonal)
        assert model.n_parameters == 3 * (4 + 1)
