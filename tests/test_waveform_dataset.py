"""Tests for the waveform classification dataset generator."""

import numpy as np
import pytest

from repro.datasets.classification import (
    WAVEFORMS,
    waveform_classification_dataset,
)


class TestWaveformDataset:
    def test_shapes_and_balance(self):
        X, y = waveform_classification_dataset(
            25, 64, 4, rng=np.random.default_rng(0))
        assert X.shape == (100, 64)
        values, counts = np.unique(y, return_counts=True)
        assert list(values) == [0, 1, 2, 3]
        assert np.all(counts == 25)

    def test_shuffled_not_blocked(self):
        _, y = waveform_classification_dataset(
            20, 32, 3, rng=np.random.default_rng(1))
        # Labels must not come out in contiguous per-class blocks.
        assert len(np.unique(y[:20])) > 1

    def test_deterministic_under_seed(self):
        a = waveform_classification_dataset(
            10, 32, 2, rng=np.random.default_rng(2))
        b = waveform_classification_dataset(
            10, 32, 2, rng=np.random.default_rng(2))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_classes_are_separable(self):
        """Different waveform families must be statistically distinct
        (or the classification experiments measure nothing)."""
        X, y = waveform_classification_dataset(
            40, 128, 2, noise_scale=0.1, rng=np.random.default_rng(3))
        sine = X[y == 0]
        square = X[y == 1]
        # Squares have much higher fourth-moment flatness than sines.
        kurtosis = lambda rows: np.mean(rows ** 4, axis=1) \
            / np.mean(rows ** 2, axis=1) ** 2  # noqa: E731
        assert kurtosis(square).mean() < kurtosis(sine).mean()

    def test_noise_scale_controls_noise(self):
        quiet, _ = waveform_classification_dataset(
            10, 64, 2, noise_scale=0.01, rng=np.random.default_rng(4))
        loud, _ = waveform_classification_dataset(
            10, 64, 2, noise_scale=1.0, rng=np.random.default_rng(4))
        diff = lambda X: np.abs(np.diff(X, axis=1)).mean()  # noqa: E731
        assert diff(loud) > 2 * diff(quiet)

    def test_phase_jitter_controls_alignment(self):
        def mean_class_correlation(jitter):
            X, y = waveform_classification_dataset(
                10, 64, 2, noise_scale=0.0, warp=0.0,
                phase_jitter=jitter, rng=np.random.default_rng(5))
            sines = X[y == 0]
            matrix = np.corrcoef(sines)
            off = ~np.eye(len(sines), dtype=bool)
            return matrix[off].mean()

        # Aligned phases correlate much more strongly than random ones
        # (frequency still varies per example, so not perfectly).
        assert mean_class_correlation(0.0) > \
            mean_class_correlation(1.0) + 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            waveform_classification_dataset(10, 64, 1)
        with pytest.raises(ValueError):
            waveform_classification_dataset(
                10, 64, len(WAVEFORMS) + 1)
