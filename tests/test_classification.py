"""Tests for classification: DTW, ROCKET, LightTS distillation."""

import numpy as np
import pytest

from repro.datasets.classification import waveform_classification_dataset
from repro.analytics.classification import (
    KnnDtwClassifier,
    LightTsDistiller,
    RocketClassifier,
    RocketFeatures,
    dtw_distance,
)


@pytest.fixture(scope="module")
def dataset():
    Xtr, ytr = waveform_classification_dataset(
        30, 96, 3, rng=np.random.default_rng(0))
    Xte, yte = waveform_classification_dataset(
        15, 96, 3, rng=np.random.default_rng(1))
    return Xtr, ytr, Xte, yte


class TestDtw:
    def test_identity_is_zero(self):
        sequence = np.sin(np.arange(30) / 3.0)
        assert dtw_distance(sequence, sequence) == pytest.approx(0.0)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=20), rng.normal(size=25)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_absorbs_time_shift_better_than_euclidean(self):
        t = np.arange(60)
        a = np.sin(2 * np.pi * t / 30)
        b = np.sin(2 * np.pi * (t + 4) / 30)
        euclidean = float(np.sqrt(((a - b) ** 2).sum()))
        assert dtw_distance(a, b, band=8) < euclidean

    def test_band_constrains(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=30), rng.normal(size=30)
        tight = dtw_distance(a, b, band=1)
        loose = dtw_distance(a, b, band=30)
        assert loose <= tight + 1e-12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])


class TestKnnDtw:
    def test_accuracy_above_chance(self, dataset):
        Xtr, ytr, Xte, yte = dataset
        model = KnnDtwClassifier(band_fraction=0.1).fit(Xtr, ytr)
        assert model.score(Xte[:12], yte[:12]) > 0.6

    def test_predict_single_example(self, dataset):
        Xtr, ytr, _, _ = dataset
        model = KnnDtwClassifier().fit(Xtr, ytr)
        assert model.predict(Xtr[0]).shape == (1,)

    def test_memorizes_training_data(self, dataset):
        Xtr, ytr, _, _ = dataset
        model = KnnDtwClassifier(n_neighbors=1).fit(Xtr[:20], ytr[:20])
        assert model.score(Xtr[:20], ytr[:20]) == 1.0

    def test_validation(self, dataset):
        Xtr, ytr, _, _ = dataset
        with pytest.raises(ValueError):
            KnnDtwClassifier(band_fraction=0.0)
        with pytest.raises(ValueError):
            KnnDtwClassifier().fit(Xtr, ytr[:-1])
        with pytest.raises(RuntimeError):
            KnnDtwClassifier().predict(Xtr)


class TestRocket:
    def test_high_accuracy(self, dataset):
        Xtr, ytr, Xte, yte = dataset
        model = RocketClassifier(200,
                                 rng=np.random.default_rng(4)).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.85

    def test_feature_shape(self, dataset):
        Xtr, _, _, _ = dataset
        features = RocketFeatures(50, rng=np.random.default_rng(5))
        assert features.transform(Xtr).shape == (len(Xtr), 100)

    def test_probabilities_normalized(self, dataset):
        Xtr, ytr, Xte, _ = dataset
        model = RocketClassifier(100,
                                 rng=np.random.default_rng(6)).fit(Xtr, ytr)
        proba = model.predict_proba(Xte)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_single_class_rejected(self, dataset):
        Xtr, _, _, _ = dataset
        with pytest.raises(ValueError):
            RocketClassifier().fit(Xtr, np.zeros(len(Xtr)))

    def test_deterministic_under_seed(self, dataset):
        Xtr, ytr, Xte, _ = dataset
        a = RocketClassifier(80, rng=np.random.default_rng(7)).fit(Xtr, ytr)
        b = RocketClassifier(80, rng=np.random.default_rng(7)).fit(Xtr, ytr)
        assert np.array_equal(a.predict(Xte), b.predict(Xte))


class TestLightTs:
    @pytest.fixture(scope="class")
    def distiller(self, dataset):
        Xtr, ytr, _, _ = dataset
        return LightTsDistiller(
            teacher_sizes=(100, 150), student_kernels=20, bits=8,
            rng=np.random.default_rng(8)).fit(Xtr, ytr)

    def test_student_much_smaller_than_teacher(self, distiller):
        assert distiller.student_size_bytes < \
            distiller.teacher_size_bytes / 20

    def test_student_accuracy_close_to_teacher(self, distiller, dataset):
        _, _, Xte, yte = dataset
        teacher = distiller.teacher_score(Xte, yte)
        student = distiller.score(Xte, yte)
        assert student >= teacher - 0.15
        assert student > 0.7

    def test_teacher_weights_normalized(self, distiller):
        assert distiller.teacher_weights_.sum() == pytest.approx(1.0)

    def test_budget_fitting_picks_feasible_bits(self, dataset):
        Xtr, ytr, _, _ = dataset
        distiller = LightTsDistiller(
            teacher_sizes=(100,), student_kernels=15,
            rng=np.random.default_rng(9))
        distiller.fit_for_budget(Xtr, ytr, budget_bytes=150)
        assert distiller.student_size_bytes <= 150

    def test_budget_too_small(self, dataset):
        Xtr, ytr, _, _ = dataset
        distiller = LightTsDistiller(
            teacher_sizes=(100,), student_kernels=15,
            rng=np.random.default_rng(10))
        with pytest.raises(ValueError):
            distiller.fit_for_budget(Xtr, ytr, budget_bytes=10)

    def test_lower_bits_smaller_size(self, distiller):
        assert distiller.size_for_bits(4) < distiller.size_for_bits(16)

    def test_validation(self):
        with pytest.raises(ValueError):
            LightTsDistiller(teacher_sizes=())
