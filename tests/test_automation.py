"""Tests for the AutoCTS-style automation layer."""

import numpy as np
import pytest

from repro.datasets import seasonal_series
from repro.analytics.automation import (
    EvolutionarySearch,
    RandomSearch,
    SearchSpace,
    SuccessiveHalving,
    ZeroShotSelector,
    build_forecaster,
    dataset_meta_features,
    evaluate_config,
)
from repro.analytics.forecasting import (
    NaiveForecaster,
    rolling_origin_evaluation,
)


@pytest.fixture(scope="module")
def series():
    return seasonal_series(700, rng=np.random.default_rng(0))


class TestSearchSpace:
    def test_sample_is_valid(self):
        space = SearchSpace()
        rng = np.random.default_rng(1)
        for _ in range(30):
            config = space.sample(rng)
            model = build_forecaster(config, period=96)
            assert model is not None

    def test_neighbors_differ_by_one_knob(self):
        space = SearchSpace(families=("ar",))
        config = {"family": "ar", "n_lags": 8, "ridge": 1.0,
                  "use_seasonal_lag": False}
        for neighbor in space.neighbors(config):
            if neighbor["family"] == "ar":
                diffs = sum(neighbor[k] != config[k]
                            for k in config)
                assert diffs == 1

    def test_mutate_returns_neighbor(self):
        space = SearchSpace()
        rng = np.random.default_rng(2)
        config = space.sample(rng)
        mutated = space.mutate(config, rng)
        assert mutated != config

    def test_size_counts_everything(self):
        space = SearchSpace(families=("naive", "ses"))
        assert space.size() == 1 + 4  # naive + 4 alpha choices

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(families=("transformer",))
        with pytest.raises(ValueError):
            build_forecaster({"family": "transformer"}, 96)

    def test_encode_is_stable(self):
        a = {"family": "ar", "n_lags": 8}
        b = {"n_lags": 8, "family": "ar"}
        assert SearchSpace.encode(a) == SearchSpace.encode(b)


class TestEvaluateConfig:
    def test_infeasible_config_scores_inf(self):
        short = seasonal_series(250, rng=np.random.default_rng(3))
        score = evaluate_config({"family": "holt_winters",
                                 "alpha_smooth": 0.3, "beta_smooth": 0.1,
                                 "gamma_smooth": 0.2}, short, period=200)
        assert score == float("inf")

    def test_parameter_budget_enforced(self, series):
        config = {"family": "ar", "n_lags": 24, "ridge": 1.0,
                  "use_seasonal_lag": True}
        unconstrained = evaluate_config(config, series, 96)
        constrained = evaluate_config(config, series, 96,
                                      max_parameters=5)
        assert np.isfinite(unconstrained)
        assert constrained == float("inf")


class TestSearchers:
    @pytest.mark.parametrize("searcher_class", [
        RandomSearch, SuccessiveHalving, EvolutionarySearch])
    def test_beats_naive_baseline(self, searcher_class, series):
        searcher = searcher_class(rng=np.random.default_rng(4))
        result = searcher.search(series, 96, budget=12)
        naive = rolling_origin_evaluation(
            lambda: NaiveForecaster(), series, horizon=12, n_origins=3)
        assert result.best_score < naive["score"]

    def test_random_search_history_length(self, series):
        result = RandomSearch(rng=np.random.default_rng(5)).search(
            series, 96, budget=7)
        assert result.n_evaluations == 7
        assert len(result.history) == 7

    def test_halving_promotes_fewer_configs(self, series):
        searcher = SuccessiveHalving(eta=3, rng=np.random.default_rng(6))
        result = searcher.search(series, 96, budget=9)
        assert np.isfinite(result.best_score)

    def test_evolution_respects_budget(self, series):
        searcher = EvolutionarySearch(population_size=4,
                                      rng=np.random.default_rng(7))
        result = searcher.search(series, 96, budget=10)
        assert result.n_evaluations == 10

    def test_constraint_respected_by_search(self, series):
        searcher = RandomSearch(max_parameters=30,
                                rng=np.random.default_rng(8))
        result = searcher.search(series, 96, budget=10)
        model = build_forecaster(result.best_config, 96)
        model.fit(series)
        assert getattr(model, "n_parameters", 0) <= 30

    def test_halving_eta_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)


class TestZeroShot:
    def test_meta_features_shape_and_ranges(self, series):
        features = dataset_meta_features(series, 96)
        assert features.shape == (8,)
        assert 0.0 <= features[2] <= 1.0  # trend strength
        assert 0.0 <= features[3] <= 1.0  # seasonal strength

    def test_seasonal_strength_detects_seasonality(self):
        seasonal = seasonal_series(500, noise_scale=0.05,
                                   rng=np.random.default_rng(9))
        noise_values = np.random.default_rng(10).normal(size=500)
        from repro import TimeSeries

        noise = TimeSeries(noise_values)
        assert dataset_meta_features(seasonal, 96)[3] > \
            dataset_meta_features(noise, 96)[3] + 0.3

    def test_recommend_nearest_fingerprint(self, series):
        selector = ZeroShotSelector()
        selector.add_known(dataset_meta_features(series, 96),
                           {"family": "seasonal_naive"})
        other = seasonal_series(
            690, amplitude=2.2, rng=np.random.default_rng(11))
        selector.add_known(
            dataset_meta_features(other, 96) + 100.0,  # far away
            {"family": "naive"})
        recommended = selector.recommend(series, 96)
        assert recommended == {"family": "seasonal_naive"}

    def test_recommend_without_training(self, series):
        with pytest.raises(RuntimeError):
            ZeroShotSelector().recommend(series, 96)

    def test_add_dataset_runs_search(self, series):
        selector = ZeroShotSelector(search_budget=5)
        result = selector.add_dataset(series, 96)
        assert selector.n_datasets == 1
        assert np.isfinite(result.best_score)

    def test_zero_shot_close_to_search(self):
        """E9's claim: transfer is competitive with a fresh search at
        zero evaluation cost."""
        rng_pool = [seasonal_series(700, amplitude=a, noise_scale=n,
                                    rng=np.random.default_rng(20 + i))
                    for i, (a, n) in enumerate(
                        [(1.0, 0.2), (2.0, 0.3), (3.0, 0.2), (1.5, 0.5)])]
        selector = ZeroShotSelector(
            searcher=RandomSearch(rng=np.random.default_rng(30)),
            search_budget=10)
        for dataset in rng_pool[:-1]:
            selector.add_dataset(dataset, 96)
        target = rng_pool[-1]
        shortlist = selector.recommend_top(target, 96, k=3)
        transfer_score = min(
            evaluate_config(config, target, 96) for config in shortlist
        )
        # The shortlist (<= 3 evaluations) must beat a blind pick:
        # better than the median of random configurations.
        rng = np.random.default_rng(32)
        space = SearchSpace()
        random_scores = [
            evaluate_config(space.sample(rng), target, 96)
            for _ in range(12)
        ]
        finite = [s for s in random_scores if np.isfinite(s)]
        assert np.isfinite(transfer_score)
        assert transfer_score <= np.median(finite)
