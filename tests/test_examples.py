"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; these tests keep them from
rotting as the library evolves.  Output volume is checked loosely so a
silently-broken example (empty output) fails too.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(SCRIPTS) >= 6


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout.strip()) > 100  # produced a real report
    assert "Traceback" not in result.stderr
